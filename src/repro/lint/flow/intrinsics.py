"""Intrinsic summaries: units.py constructors, builtins, taint sources.

The flow analysis never interprets :mod:`repro.units` bodies; each
converter gets a hand-written summary (expected argument dimension,
result dimension and representation) keyed by qualified name.  That
makes the seeds exact — ``us(...)`` *defines* integer nanoseconds — and
lets fixture programs that merely ``from repro.units import us`` get the
same treatment without the real module in the analyzed set.

The taint tables mirror :mod:`repro.lint.rules_determinism` (DET001)
sources; DET002 differs by *carrying* the taint interprocedurally to
simulator-state sinks instead of flagging the call site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.flow.lattice import BOTTOM, TOP, AbsValue, Dim
from repro.lint.rules_determinism import (
    _DATETIME_FUNCS,
    _NP_RANDOM_OK,
    _NP_RANDOM_SEEDED,
    _WALL_CLOCK_FUNCS,
)

_NS = Dim("time", 1e-9)
_US = Dim("time", 1e-6)
_MS = Dim("time", 1e-3)
_S = Dim("time", 1.0)
_HZ = Dim("frequency", 1.0)
_MHZ = Dim("frequency", 1e6)
_GHZ = Dim("frequency", 1e9)
_J = Dim("energy", 1.0)
#: One RAPL counter increment is 2**-16 J (family 17h energy status unit).
_RAPL = Dim("energy", 2.0**-16)
_NUM = Dim("dimensionless", 1.0)


@dataclass(frozen=True)
class Intrinsic:
    """Summary of one units.py converter: param dims and result value."""

    ret: AbsValue
    params: tuple[tuple[str, Dim], ...] = ()


def _val(dim: Dim, rep: str) -> AbsValue:
    return AbsValue(dim=dim, rep=rep)


_U = "repro.units."

#: qname -> summary for every :mod:`repro.units` converter.
UNITS_INTRINSICS: dict[str, Intrinsic] = {
    _U + "us": Intrinsic(_val(_NS, "int"), (("value", _US),)),
    _U + "ms": Intrinsic(_val(_NS, "int"), (("value", _MS),)),
    _U + "s": Intrinsic(_val(_NS, "int"), (("value", _S),)),
    _U + "ns_to_us": Intrinsic(_val(_US, "float"), (("t_ns", _NS),)),
    _U + "ns_to_ms": Intrinsic(_val(_MS, "float"), (("t_ns", _NS),)),
    _U + "ns_to_s": Intrinsic(_val(_S, "float"), (("t_ns", _NS),)),
    _U + "mhz": Intrinsic(_val(_HZ, "float"), (("value", _MHZ),)),
    _U + "ghz": Intrinsic(_val(_HZ, "float"), (("value", _GHZ),)),
    _U + "hz_to_mhz": Intrinsic(_val(_MHZ, "float"), (("f_hz", _HZ),)),
    _U + "hz_to_ghz": Intrinsic(_val(_GHZ, "float"), (("f_hz", _HZ),)),
    _U + "snap_to_pstate_grid": Intrinsic(_val(_HZ, "float"), (("f_hz", _HZ),)),
    # Deliberately fractional nanoseconds: an analytic quantity.  This is
    # the canonical DIM003 source when assigned to an integer *_ns cell.
    _U + "cycles_to_ns": Intrinsic(
        _val(_NS, "float"), (("cycles", _NUM), ("f_hz", _HZ))
    ),
    _U + "ns_to_cycles": Intrinsic(
        _val(_NUM, "float"), (("t_ns", _NS), ("f_hz", _HZ))
    ),
    _U + "joules_to_rapl_units": Intrinsic(_val(_RAPL, "int"), (("e_j", _J),)),
    _U + "rapl_units_to_joules": Intrinsic(_val(_J, "float"), (("raw", _RAPL),)),
}


def _const(value: float, rep: str, dim: Dim = _NUM, scale: bool = True) -> AbsValue:
    return AbsValue(dim=dim, rep=rep, const=value, scale_const=scale)


#: qname -> value for units.py module constants (for programs importing
#: them when repro.units itself is outside the analyzed set).
UNITS_CONSTANTS: dict[str, AbsValue] = {
    _U + "NS_PER_US": _const(1e3, "int"),
    _U + "NS_PER_MS": _const(1e6, "int"),
    _U + "NS_PER_S": _const(1e9, "int"),
    _U + "KHZ": _const(1e3, "float"),
    _U + "MHZ": _const(1e6, "float"),
    _U + "GHZ": _const(1e9, "float"),
    _U + "PSTATE_FREQ_STEP_HZ": _const(25e6, "float", _HZ, scale=False),
    _U + "RAPL_ENERGY_UNIT_J": _const(2.0**-16, "float", _J, scale=False),
    _U + "RAPL_COUNTER_WRAP": _const(float(2**32), "int"),
}


#: Wall-clock reads, by resolved dotted name.
WALL_CLOCK_DOTTED = (
    {f"time.{name}" for name in _WALL_CLOCK_FUNCS}
    | {f"datetime.datetime.{name}" for name in _DATETIME_FUNCS}
    | {"datetime.date.today"}
)

_EXTRA_RNG = {
    "os.urandom",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbelow",
    "secrets.choice",
}


def taint_source(dotted: str, node: ast.Call) -> tuple[str, str] | None:
    """(kind, detail) when a resolved external call is nondeterministic."""
    if dotted in WALL_CLOCK_DOTTED:
        return ("wall-clock", f"{dotted}()")
    parts = dotted.split(".")
    if parts[0] == "random" and len(parts) > 1:
        if parts[-1] == "Random" and (node.args or node.keywords):
            return None  # seeded private instance
        return ("unseeded-rng", f"{dotted}()")
    if dotted.startswith("numpy.random."):
        attr = parts[-1]
        if attr in _NP_RANDOM_OK:
            return None
        if attr in _NP_RANDOM_SEEDED and (node.args or node.keywords):
            return None
        return ("unseeded-rng", f"{dotted}()")
    if dotted in _EXTRA_RNG:
        return ("unseeded-rng", f"{dotted}()")
    return None


#: math.* functions that keep their argument's dimension.
MATH_DIM_PRESERVING = {
    "math.floor": "int",
    "math.ceil": "int",
    "math.trunc": "int",
    "math.fabs": "float",
}

#: Classes whose attributes are simulator state (DET002 sinks), matched
#: by basename so fixture programs need no package layout.
STATE_BASENAMES = {"Machine", "Simulator"}

#: Methods that feed the event queue; tainted arguments are DET002.
SCHEDULE_METHODS = {"schedule_at", "schedule_after", "periodic", "push"}

#: Annotation name -> representation element.
ANN_REPS = {"int": "int", "float": "float", "bool": "int"}


def rep_from_annotation(names: set[str]) -> object:
    """Representation lattice element implied by annotation type names."""
    reps = {ANN_REPS[name] for name in names if name in ANN_REPS}
    if not reps:
        return BOTTOM
    if len(reps) == 1:
        return next(iter(reps))
    return TOP
