"""Baseline file support: accepted findings for gradual adoption.

A baseline records the flow findings a project has reviewed and chosen
to live with (or fix later), so ``lint --flow`` only fails on *new*
problems.  Entries are fingerprinted by (rule, path, message) with line
numbers inside the message normalized away, so unrelated edits that
shift lines do not churn the file.
"""

from __future__ import annotations

import json
import os
import re

from repro.errors import LintError
from repro.lint.findings import Finding

BASELINE_VERSION = 1

#: Line references embedded in messages (taint witnesses carry
#: ``path:123``); normalized so fingerprints survive line drift.
_LINE_REF = re.compile(r":\d+")


def fingerprint(finding: Finding) -> tuple[str, str, str]:
    return (
        finding.rule,
        finding.path.replace("\\", "/"),
        _LINE_REF.sub(":_", finding.message),
    )


def load_baseline(path: str) -> set[tuple[str, str, str]]:
    """The fingerprints recorded in ``path`` (empty set if absent)."""
    if not os.path.exists(path):
        return set()
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        raise LintError(f"cannot read baseline {path}: {err}") from err
    entries = doc.get("findings", [])
    return {
        (e["rule"], e["path"], _LINE_REF.sub(":_", e["message"]))
        for e in entries
        if isinstance(e, dict) and {"rule", "path", "message"} <= e.keys()
    }


def write_baseline(path: str, findings: list[Finding]) -> None:
    """Record ``findings`` as the accepted baseline at ``path``."""
    entries = sorted(
        {
            (f.rule, f.path.replace("\\", "/"), _LINE_REF.sub(":_", f.message))
            for f in findings
        }
    )
    doc = {
        "version": BASELINE_VERSION,
        "findings": [
            {"rule": rule, "path": p, "message": message}
            for rule, p, message in entries
        ],
    }
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError as err:
        raise LintError(f"cannot write baseline {path}: {err}") from err


def split_baselined(
    findings: list[Finding], accepted: set[tuple[str, str, str]]
) -> tuple[list[Finding], int]:
    """(new findings, count matched by the baseline)."""
    if not accepted:
        return list(findings), 0
    kept: list[Finding] = []
    matched = 0
    for finding in findings:
        if fingerprint(finding) in accepted:
            matched += 1
        else:
            kept.append(finding)
    return kept, matched
