"""Abstract domain of the dimensional-dataflow analysis.

Each abstract value tracks five independent facts, each a small join
semilattice (``BOTTOM`` = "nothing known yet", ``TOP`` = "conflicting or
unknowable"):

* **dim** — the physical dimension: a :class:`Dim` with a kind (time,
  frequency, power, energy, voltage, current, temperature,
  dimensionless) and a scale factor relative to the kind's SI base unit
  (``ns`` is ``1e-9`` of a second, ``mhz`` is ``1e6`` hertz, ...).  A
  ``None`` factor means "this kind, scale unknown" — the conservative
  join of two scales of the same kind.
* **rep** — the numeric representation, ``"int"`` or ``"float"``.
  DESIGN.md §7 demands integer nanoseconds for event time; a value
  whose rep is definitely ``"float"`` must never reach an int-ns cell.
* **taints** — nondeterminism witnesses (wall-clock reads, unseeded
  RNG draws, set-iteration order) carried from source to sink for
  DET002.
* **cls** — the qualified class name of the value when it is a known
  instance; powers method resolution and Machine/Simulator sink checks.
* **const** — the numeric value when statically known, used to
  recognize scale conversions through named unit constants.

Joins are componentwise, monotone and of finite height, so the global
fixpoint terminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.lint.rules_units import SUFFIXES


class _Mark:
    """Lattice bound sentinel with a readable repr."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return self.name


BOTTOM = _Mark("<bottom>")
TOP = _Mark("<top>")


@dataclass(frozen=True)
class Dim:
    """A physical dimension: kind plus scale factor to the SI base unit."""

    kind: str
    factor: float | None = None

    def render(self) -> str:
        if self.kind == "dimensionless":
            return "dimensionless"
        if self.factor is None:
            return self.kind
        token = scale_token(self.kind, self.factor)
        if token is not None:
            return f"{self.kind}[{token}]"
        return f"{self.kind}[{self.factor:g}]"


#: SI base factor is 1.0; every suffix token maps to (kind, factor).
_SUFFIX_FACTORS: dict[str, float] = {
    "ns": 1e-9,
    "us": 1e-6,
    "ms": 1e-3,
    "s": 1.0,
    "hz": 1.0,
    "khz": 1e3,
    "mhz": 1e6,
    "ghz": 1e9,
    "w": 1.0,
    "mw": 1e-3,
    "j": 1.0,
    "v": 1.0,
    "mv": 1e-3,
    "a": 1.0,
    # Temperature scales are affine, not multiplicative: no factor, so
    # the flow pass never claims a c<->k conversion is a pure rescale.
    "c": None,
    "k": None,
}

DIMENSIONLESS = Dim("dimensionless", 1.0)


def dim_for_suffix(suffix: str) -> Dim:
    """The :class:`Dim` a recognized unit suffix declares."""
    kind, _scale = SUFFIXES[suffix]
    return Dim(kind, _SUFFIX_FACTORS[suffix])


def scale_token(kind: str, factor: float | None) -> str | None:
    """The suffix token matching ``factor`` for ``kind``, if canonical."""
    if factor is None:
        return None
    for token, (suffix_kind, _scale) in SUFFIXES.items():
        if suffix_kind != kind:
            continue
        token_factor = _SUFFIX_FACTORS[token]
        if token_factor is not None and _close(token_factor, factor):
            return token
    return None


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= 1e-9 * max(abs(a), abs(b), 1e-30)


def factors_conflict(a: float | None, b: float | None) -> bool:
    """Whether two scale factors are both known and definitely differ."""
    return a is not None and b is not None and not _close(a, b)


@dataclass(frozen=True, order=True)
class Taint:
    """One nondeterminism witness attached to a value."""

    kind: str  # "wall-clock" | "unseeded-rng" | "set-iteration"
    detail: str  # e.g. "time.monotonic()"
    path: str
    line: int

    def render(self) -> str:
        return f"{self.kind} {self.detail} at {self.path}:{self.line}"


#: Cap on taints carried per value; keeps joins cheap and messages short.
MAX_TAINTS = 4


@dataclass(frozen=True)
class AbsValue:
    """One abstract value: the product of the five component lattices."""

    dim: object = BOTTOM  # BOTTOM | Dim | TOP
    rep: object = BOTTOM  # BOTTOM | "int" | "float" | TOP
    taints: frozenset = frozenset()
    cls: object = BOTTOM  # BOTTOM | qualified class name | TOP
    container: object = BOTTOM  # BOTTOM | "set" | "list" | ... | TOP
    const: float | None = None  # statically-known numeric value
    #: True when ``const`` came from an ALL_CAPS module constant — the
    #: only multiplications/divisions treated as deliberate rescaling.
    scale_const: bool = False


UNKNOWN = AbsValue(dim=TOP, rep=TOP, cls=TOP, container=TOP)
BOT = AbsValue()


def join_flat(a: object, b: object) -> object:
    """Join on a flat lattice (BOTTOM < values < TOP)."""
    if a is BOTTOM:
        return b
    if b is BOTTOM:
        return a
    if a is TOP or b is TOP:
        return TOP
    return a if a == b else TOP


def join_dim(a: object, b: object) -> object:
    """Join of two dimension elements; same kind widens to factor-None."""
    if a is BOTTOM:
        return b
    if b is BOTTOM:
        return a
    if a is TOP or b is TOP:
        return TOP
    assert isinstance(a, Dim) and isinstance(b, Dim)
    if a.kind != b.kind:
        return TOP
    if a.factor is not None and b.factor is not None and _close(a.factor, b.factor):
        return a
    return Dim(a.kind, None)


def join_taints(a: frozenset, b: frozenset) -> frozenset:
    merged = a | b
    if len(merged) > MAX_TAINTS:
        merged = frozenset(sorted(merged)[:MAX_TAINTS])
    return merged


def join(a: AbsValue, b: AbsValue) -> AbsValue:
    """Componentwise join of two abstract values."""
    if a == b:
        return a
    const = a.const if (a.const is not None and a.const == b.const) else None
    return AbsValue(
        dim=join_dim(a.dim, b.dim),
        rep=join_flat(a.rep, b.rep),
        taints=join_taints(a.taints, b.taints),
        cls=join_flat(a.cls, b.cls),
        container=join_flat(a.container, b.container),
        const=const,
        scale_const=a.scale_const and b.scale_const,
    )


def with_taints(value: AbsValue, taints: frozenset) -> AbsValue:
    if not taints:
        return value
    return replace(value, taints=join_taints(value.taints, taints))


# ---------------------------------------------------------------------------
# dimensional arithmetic
# ---------------------------------------------------------------------------

#: kind × kind -> product kind (commutative; looked up both ways).
_MUL_KINDS = {
    ("time", "frequency"): "dimensionless",
    ("power", "time"): "energy",
    ("current", "voltage"): "power",
}

#: kind / kind -> quotient kind (ordered).
_DIV_KINDS = {
    ("energy", "time"): "power",
    ("energy", "power"): "time",
    ("power", "voltage"): "current",
    ("power", "current"): "voltage",
    ("power", "frequency"): "energy",
    ("dimensionless", "time"): "frequency",
    ("dimensionless", "frequency"): "time",
}


@dataclass
class BinResult:
    """Outcome of abstract arithmetic: the value plus any DIM001 defect."""

    value: AbsValue
    mismatch: str | None = None  # human detail when the operation is unsound


def _rep_arith(op: str, a: object, b: object) -> object:
    if op == "div":
        return "float"
    if op == "floordiv":
        return "int" if (a == "int" and b == "int") else join_flat(a, b)
    if a is BOTTOM or b is BOTTOM:
        return BOTTOM
    if a == "float" or b == "float":
        return "float"
    if a == "int" and b == "int":
        return "int"
    return TOP


def _const_arith(op: str, a: AbsValue, b: AbsValue) -> float | None:
    if a.const is None or b.const is None:
        return None
    try:
        if op == "add":
            return a.const + b.const
        if op == "sub":
            return a.const - b.const
        if op == "mult":
            return a.const * b.const
        if op == "div":
            return a.const / b.const
        if op == "floordiv":
            return float(a.const // b.const)
        if op == "mod":
            return float(a.const % b.const)
        if op == "pow":
            return float(a.const**b.const)
    except (ZeroDivisionError, OverflowError, ValueError):
        return None
    return None


def _is_dimensionless(dim: object) -> bool:
    return isinstance(dim, Dim) and dim.kind == "dimensionless"


def _additive(op: str, a: AbsValue, b: AbsValue) -> BinResult:
    taints = join_taints(a.taints, b.taints)
    rep = _rep_arith(op, a.rep, b.rep)
    const = _const_arith(op, a, b)
    da, db = a.dim, b.dim
    if not isinstance(da, Dim) or not isinstance(db, Dim):
        dim = da if isinstance(da, Dim) else db if isinstance(db, Dim) else TOP
        return BinResult(AbsValue(dim=dim, rep=rep, taints=taints, const=const))
    # A dimensionless addend (offsets, literals like `+ 1`) adopts the
    # dimensioned side; that is deliberate slack, not an error.
    if _is_dimensionless(da):
        return BinResult(AbsValue(dim=db, rep=rep, taints=taints, const=const))
    if _is_dimensionless(db):
        return BinResult(AbsValue(dim=da, rep=rep, taints=taints, const=const))
    if da.kind != db.kind:
        detail = f"{da.render()} {'+' if op == 'add' else '-'} {db.render()}"
        return BinResult(
            AbsValue(dim=TOP, rep=rep, taints=taints), mismatch=detail
        )
    if factors_conflict(da.factor, db.factor):
        detail = (
            f"{da.render()} {'+' if op == 'add' else '-'} {db.render()} "
            "(same dimension, different scale)"
        )
        return BinResult(
            AbsValue(dim=Dim(da.kind, None), rep=rep, taints=taints),
            mismatch=detail,
        )
    factor = da.factor if da.factor is not None else db.factor
    return BinResult(
        AbsValue(dim=Dim(da.kind, factor), rep=rep, taints=taints, const=const)
    )


def _rescale(dim: Dim, a: AbsValue, b: AbsValue, op: str) -> Dim | None:
    """Reinterpret mult/div by a named ALL_CAPS constant as rescaling.

    ``t_ns / NS_PER_US`` keeps the physical value and multiplies the
    scale factor by the constant; ``f_mhz * MHZ`` divides it.  Bare
    literals (``total / 2``) are value arithmetic, never a rescale, so
    they widen the factor to unknown instead (handled by the caller).
    """
    scaler = b if b.scale_const else a if a.scale_const else None
    if scaler is None or scaler.const is None or scaler.const == 0:
        return None
    if dim.factor is None:
        return Dim(dim.kind, None)
    if op == "div" and scaler is b:
        return Dim(dim.kind, dim.factor * scaler.const)
    if op == "mult":
        return Dim(dim.kind, dim.factor / scaler.const)
    return None


def _multiplicative(op: str, a: AbsValue, b: AbsValue) -> BinResult:
    taints = join_taints(a.taints, b.taints)
    rep = _rep_arith(op, a.rep, b.rep)
    const = _const_arith(op, a, b)
    da, db = a.dim, b.dim
    if not isinstance(da, Dim) or not isinstance(db, Dim):
        return BinResult(AbsValue(dim=TOP, rep=rep, taints=taints, const=const))

    if op in ("mod", "floordiv"):
        # x % y and x // y keep x's dimension when y is dimensionless or
        # shares the kind; anything else is out of scope.
        if _is_dimensionless(db) or da.kind == db.kind:
            dim = da if _is_dimensionless(db) else Dim("dimensionless", 1.0)
            return BinResult(AbsValue(dim=dim, rep=rep, taints=taints, const=const))
        return BinResult(AbsValue(dim=TOP, rep=rep, taints=taints, const=const))

    if op == "pow":
        if _is_dimensionless(da) and _is_dimensionless(db):
            return BinResult(
                AbsValue(dim=DIMENSIONLESS, rep=rep, taints=taints, const=const)
            )
        return BinResult(AbsValue(dim=TOP, rep=rep, taints=taints, const=const))

    if _is_dimensionless(da) and _is_dimensionless(db):
        return BinResult(
            AbsValue(dim=DIMENSIONLESS, rep=rep, taints=taints, const=const)
        )

    # Dimensioned op dimensionless: either a deliberate rescale through a
    # named unit constant, or plain value arithmetic (factor widens to
    # unknown — `t_ns / 2` might mean either down-scaling or halving).
    if _is_dimensionless(db) or _is_dimensionless(da):
        dimensioned, other = (a, b) if _is_dimensionless(db) else (b, a)
        if op == "div" and dimensioned is b:
            # dimensionless / dimensioned: 1/time = frequency etc.
            quotient = _DIV_KINDS.get(("dimensionless", db.kind))
            if quotient is None:
                return BinResult(AbsValue(dim=TOP, rep=rep, taints=taints))
            factor = None
            if db.factor not in (None, 0.0) and _is_pure(a):
                # A scale-constant numerator changes the result's unit:
                # NS_PER_S / rate_hz is a *nanosecond* count, not seconds.
                scale = a.const if a.scale_const and a.const else 1.0
                factor = 1.0 / (db.factor * scale)
            return BinResult(
                AbsValue(dim=Dim(quotient, factor), rep=rep, taints=taints)
            )
        dim = dimensioned.dim
        assert isinstance(dim, Dim)
        rescaled = _rescale(dim, a, b, op)
        if rescaled is not None:
            return BinResult(AbsValue(dim=rescaled, rep=rep, taints=taints))
        if other.const is not None and other.const == 1:
            return BinResult(AbsValue(dim=dim, rep=rep, taints=taints))
        return BinResult(
            AbsValue(dim=Dim(dim.kind, None), rep=rep, taints=taints)
        )

    # Both sides dimensioned.
    if op == "div":
        if da.kind == db.kind:
            factor = (
                da.factor / db.factor
                if da.factor is not None and db.factor not in (None, 0.0)
                else None
            )
            return BinResult(
                AbsValue(dim=Dim("dimensionless", factor), rep=rep, taints=taints)
            )
        quotient = _DIV_KINDS.get((da.kind, db.kind))
        if quotient is None:
            return BinResult(AbsValue(dim=TOP, rep=rep, taints=taints))
        factor = (
            da.factor / db.factor
            if da.factor is not None and db.factor not in (None, 0.0)
            else None
        )
        return BinResult(
            AbsValue(dim=Dim(quotient, factor), rep=rep, taints=taints)
        )

    product = _MUL_KINDS.get((da.kind, db.kind)) or _MUL_KINDS.get(
        (db.kind, da.kind)
    )
    if product is None:
        return BinResult(AbsValue(dim=TOP, rep=rep, taints=taints))
    factor = (
        da.factor * db.factor
        if da.factor is not None and db.factor is not None
        else None
    )
    return BinResult(AbsValue(dim=Dim(product, factor), rep=rep, taints=taints))


def _is_pure(value: AbsValue) -> bool:
    """A plain number: dimensionless with the neutral factor."""
    return (
        isinstance(value.dim, Dim)
        and value.dim.kind == "dimensionless"
        and (value.dim.factor is None or value.dim.factor == 1.0)
    )


def binop(op: str, a: AbsValue, b: AbsValue) -> BinResult:
    """Abstract evaluation of ``a <op> b`` with dimension checking."""
    if op in ("add", "sub"):
        return _additive(op, a, b)
    if op in ("mult", "div", "floordiv", "mod", "pow"):
        return _multiplicative(op, a, b)
    # Bit ops, shifts, matmul: no dimensional meaning tracked.
    return BinResult(
        AbsValue(
            dim=TOP,
            rep=_rep_arith(op, a.rep, b.rep),
            taints=join_taints(a.taints, b.taints),
        )
    )
