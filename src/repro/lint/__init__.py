"""Simulator-aware static analysis and runtime invariant sanitizing.

Two halves (DESIGN.md §7's determinism contract, enforced):

* **Static**: ``python -m repro.lint src/ tests/`` parses every module and
  applies simulator-aware rules — DET001 (no wall-clock/unseeded
  randomness), UNIT001 (suffix-driven unit consistency), EXC001
  (:class:`~repro.errors.ReproError` discipline), SIM001 (no simulator
  re-entry from event callbacks).  Findings support inline
  ``# lint: disable=RULE`` suppressions and JSON output for tooling.
* **Runtime**: :class:`~repro.lint.monitor.InvariantMonitor` hooks a
  :class:`~repro.machine.Machine` and asserts physical invariants after
  every event batch; :mod:`repro.lint.shuffle` re-runs scenarios under
  randomized same-timestamp tie-breaking to detect event-ordering races.
"""

from repro.lint.engine import LintReport, lint_paths, lint_source
from repro.lint.findings import Finding, SuppressionIndex
from repro.lint.monitor import InvariantMonitor
from repro.lint.rules import all_rules, rules_by_id
from repro.lint.shuffle import OrderingReport, ordering_check, selfcheck_ordering

__all__ = [
    "Finding",
    "InvariantMonitor",
    "LintReport",
    "OrderingReport",
    "SuppressionIndex",
    "all_rules",
    "lint_paths",
    "lint_source",
    "ordering_check",
    "rules_by_id",
    "selfcheck_ordering",
]
