"""SIM001 — event callbacks must not re-enter the simulator.

A callback firing inside :meth:`Simulator.run_until` that calls
``run_until``/``run_for``/``step`` again, or writes the clock, corrupts
the event loop (the engine also guards at runtime; this catches it
before a run).  Detection is intra-module: any function or lambda passed
to ``schedule_at``/``schedule_after``/``periodic``/``push`` is treated
as an event callback, and its body (plus same-named methods) is scanned
for re-entry and clock mutation.  Clock writes (``*._now_ns = ...``)
are additionally flagged *anywhere* outside the engine module itself.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.rules import LintRule, ModuleContext, register

_SCHEDULING_METHODS = {"schedule_at", "schedule_after", "periodic", "push"}
_REENTRY_METHODS = {"run_until", "run_for", "step"}
_CLOCK_ATTRS = {"_now_ns", "now_ns"}

#: The dispatch engines own the clock; everything else only reads it.
#: Every simulation backend's engine module belongs here
#: (repro.sim.backends / docs/backends.md).
_ENGINE_MODULES = {"repro.sim.engine", "repro.sim.batched"}


@register
class SimulatorReentryRule(LintRule):
    rule_id = "SIM001"
    title = "event callbacks must not re-enter the simulator or move the clock"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.module in _ENGINE_MODULES:
            return []
        callback_names = set()
        inline_callbacks: list[ast.Lambda] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr not in _SCHEDULING_METHODS:
                    continue
                keyword_callbacks = [
                    kw.value for kw in node.keywords if kw.arg == "callback"
                ]
                for candidate in [*node.args[1:], *keyword_callbacks]:
                    if isinstance(candidate, ast.Name):
                        callback_names.add(candidate.id)
                    elif isinstance(candidate, ast.Attribute):
                        callback_names.add(candidate.attr)
                    elif isinstance(candidate, ast.Lambda):
                        inline_callbacks.append(candidate)

        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            # Clock mutation is illegal everywhere, callback or not.
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) and target.attr in _CLOCK_ATTRS:
                        findings.append(
                            ctx.finding(
                                target,
                                self.rule_id,
                                f"writes the simulation clock ({target.attr}); "
                                "only the engine advances time",
                            )
                        )
            elif (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in callback_names
            ):
                findings.extend(self._scan_callback(ctx, node, node.name))
        for lam in inline_callbacks:
            findings.extend(self._scan_callback(ctx, lam, "<lambda>"))
        return findings

    def _scan_callback(self, ctx: ModuleContext, func: ast.AST, name: str) -> list[Finding]:
        findings = []
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _REENTRY_METHODS
            ):
                findings.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        f"event callback '{name}' re-enters the simulator via "
                        f".{node.func.attr}(); schedule follow-up events instead",
                    )
                )
        return findings
