"""DET001 — no wall-clock reads or unseeded randomness in sim code.

The event engine's bit-exact determinism (DESIGN.md §7) dies the moment
any model code consults the host: wall-clock time, the process-global
``random``/``numpy.random`` state, or iteration order of unordered
containers feeding the event queue.  Every stochastic component must
draw from :class:`repro.sim.rng.RngFactory` (seeded, named streams).

Flagged:

* ``time.time/«monotonic»/«perf_counter»/...`` and ``datetime.now`` /
  ``utcnow`` / ``today`` calls;
* any call through the stdlib ``random`` module (except a *seeded*
  ``random.Random(seed)``);
* the process-global numpy RNG (``np.random.<dist>``, ``np.random.seed``)
  and *unseeded* ``default_rng()`` / ``RandomState()``;
* ``dict.popitem()`` and direct iteration over ``set`` literals /
  ``set()``/``frozenset()`` calls (unordered iteration).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.rules import LintRule, ModuleContext, register

_WALL_CLOCK_FUNCS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "clock_gettime",
}
_DATETIME_FUNCS = {"now", "utcnow", "today"}
#: numpy.random attributes that are fine because they construct seeded /
#: explicitly-managed generators rather than touching global state.
_NP_RANDOM_OK = {"Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox"}
#: numpy.random constructors that are fine only when given a seed.
_NP_RANDOM_SEEDED = {"default_rng", "RandomState"}


@register
class NondeterminismRule(LintRule):
    rule_id = "DET001"
    title = "no wall-clock or unseeded randomness in simulator code"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        imports = _ImportMap(ctx.tree)
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                message = self._check_call(node, imports)
                if message:
                    findings.append(ctx.finding(node, self.rule_id, message))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                findings.extend(self._check_iter(ctx, node.iter))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    findings.extend(self._check_iter(ctx, gen.iter))
        return findings

    # --- helpers -----------------------------------------------------------

    def _check_call(self, node: ast.Call, imports: "_ImportMap") -> str | None:
        func = node.func
        if isinstance(func, ast.Name):
            origin = imports.direct.get(func.id)
            if origin == "time":
                return (
                    f"wall-clock call {func.id}() in simulator code; "
                    "simulation time comes from Simulator.now_ns"
                )
            if origin == "random":
                return (
                    f"global stdlib RNG call {func.id}(); "
                    "use repro.sim.rng.RngFactory streams"
                )
            if (
                origin == "numpy.random"
                and func.id not in _NP_RANDOM_OK
                and (func.id not in _NP_RANDOM_SEEDED or not (node.args or node.keywords))
            ):
                return (
                    f"unseeded numpy RNG {func.id}(); pass an explicit seed "
                    "or use repro.sim.rng.RngFactory"
                )
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        if attr == "popitem":
            return (
                "dict.popitem() pops in insertion-dependent order; "
                "index explicitly to keep event ordering reproducible"
            )
        value = func.value
        if isinstance(value, ast.Name):
            if value.id in imports.time_aliases and attr in _WALL_CLOCK_FUNCS:
                return (
                    f"wall-clock call {value.id}.{attr}() in simulator code; "
                    "simulation time comes from Simulator.now_ns"
                )
            if value.id in imports.random_aliases:
                if attr == "Random" and (node.args or node.keywords):
                    return None  # seeded private instance
                return (
                    f"global stdlib RNG call {value.id}.{attr}(); "
                    "use repro.sim.rng.RngFactory streams"
                )
            if value.id in imports.datetime_classes and attr in _DATETIME_FUNCS:
                return (
                    f"wall-clock call {value.id}.{attr}(); simulation time "
                    "comes from Simulator.now_ns"
                )
        # np.random.X / numpy.random.X / datetime.datetime.now chains
        if isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
            base, mid = value.value.id, value.attr
            if base in imports.numpy_aliases and mid == "random":
                if attr in _NP_RANDOM_OK:
                    return None
                if attr in _NP_RANDOM_SEEDED:
                    if node.args or node.keywords:
                        return None
                    return (
                        f"unseeded numpy RNG {base}.random.{attr}(); pass an "
                        "explicit seed or use repro.sim.rng.RngFactory"
                    )
                return (
                    f"process-global numpy RNG {base}.random.{attr}(); "
                    "use repro.sim.rng.RngFactory streams"
                )
            if base in imports.datetime_modules and mid in ("datetime", "date"):
                if attr in _DATETIME_FUNCS:
                    return (
                        f"wall-clock call {base}.{mid}.{attr}(); simulation "
                        "time comes from Simulator.now_ns"
                    )
        return None

    def _check_iter(self, ctx: ModuleContext, iter_node: ast.expr) -> list[Finding]:
        unordered = isinstance(iter_node, ast.Set) or (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id in ("set", "frozenset")
        )
        if not unordered:
            return []
        return [
            ctx.finding(
                iter_node,
                self.rule_id,
                "iterating a set has no guaranteed order; sort it before it "
                "can feed the event queue",
            )
        ]


class _ImportMap:
    """Names the module binds to time/random/numpy/datetime facilities."""

    def __init__(self, tree: ast.Module) -> None:
        self.time_aliases: set[str] = set()
        self.random_aliases: set[str] = set()
        self.numpy_aliases: set[str] = set()
        self.datetime_modules: set[str] = set()
        self.datetime_classes: set[str] = set()
        #: direct name -> originating module ("time" | "random" | "numpy.random")
        self.direct: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "time":
                        self.time_aliases.add(bound)
                    elif alias.name == "random":
                        self.random_aliases.add(bound)
                    elif alias.name in ("numpy", "numpy.random"):
                        self.numpy_aliases.add(bound)
                    elif alias.name == "datetime":
                        self.datetime_modules.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if node.module == "time" and alias.name in _WALL_CLOCK_FUNCS:
                        self.direct[bound] = "time"
                    elif node.module == "random":
                        self.direct[bound] = "random"
                    elif node.module == "numpy.random":
                        self.direct[bound] = "numpy.random"
                    elif node.module == "numpy" and alias.name == "random":
                        self.numpy_aliases.add(bound)
                    elif node.module == "datetime" and alias.name in ("datetime", "date"):
                        self.datetime_classes.add(bound)
