"""EXC001 — raises stay inside the :class:`repro.errors.ReproError` family.

Applications catch everything this package raises with one ``except
ReproError`` clause; a stray ad-hoc exception type silently escapes
that contract.  The rule allows:

* any class from :mod:`repro.errors` (or a local subclass of one);
* re-raising a caught exception (``raise`` / ``raise err``);
* a stdlib builtin exception **with a justification comment** — an
  ``# EXC001: <reason>`` comment on the raise line or the line above —
  for sites that deliberately mirror stdlib semantics (e.g. a mapping
  facade raising ``KeyError``).
"""

from __future__ import annotations

import ast
import builtins
import re
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.rules import LintRule, ModuleContext, register

#: The hierarchy in repro/errors.py.  Kept as a fallback so the linter
#: works on single files; names imported from repro.errors are accepted
#: dynamically too.
REPRO_ERRORS = {
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "PStateError",
    "CStateError",
    "SysfsError",
    "MsrError",
    "SimulationError",
    "MeasurementError",
    "WorkloadError",
    "LintError",
    "SuiteError",
    "ParallelError",
    "CacheError",
    "InvariantViolation",
}

_BUILTIN_EXCEPTIONS = {
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
}

_JUSTIFIED_RE = re.compile(r"#\s*EXC001:\s*\S")


@register
class ReproErrorHierarchyRule(LintRule):
    rule_id = "EXC001"
    title = "raises use the ReproError hierarchy (or justified builtins)"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        allowed = set(REPRO_ERRORS)
        caught_names: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "repro.errors":
                allowed.update(alias.asname or alias.name for alias in node.names)
            elif isinstance(node, ast.ClassDef):
                bases = {b.id for b in node.bases if isinstance(b, ast.Name)}
                bases |= {b.attr for b in node.bases if isinstance(b, ast.Attribute)}
                if bases & allowed:
                    allowed.add(node.name)
            elif isinstance(node, ast.ExceptHandler) and node.name:
                caught_names.add(node.name)

        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise):
                continue
            exc = node.exc
            if exc is None:
                continue  # bare re-raise
            name = self._raised_name(exc)
            if name is None or name in allowed or name in caught_names:
                continue
            if name in _BUILTIN_EXCEPTIONS:
                if self._justified(ctx, node.lineno):
                    continue
                findings.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        f"raises builtin {name} without justification; use a "
                        "ReproError subclass or add an '# EXC001: reason' "
                        "comment explaining the stdlib semantics",
                    )
                )
            else:
                findings.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        f"raises {name}, which is not part of the ReproError "
                        "hierarchy",
                    )
                )
        return findings

    @staticmethod
    def _raised_name(exc: ast.expr) -> str | None:
        node = exc.func if isinstance(exc, ast.Call) else exc
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    @staticmethod
    def _justified(ctx: ModuleContext, lineno: int) -> bool:
        return bool(
            _JUSTIFIED_RE.search(ctx.line_text(lineno))
            or _JUSTIFIED_RE.search(ctx.line_text(lineno - 1))
        )
