"""Rule plumbing: per-module context, rule base class, registry.

A rule is a class with a ``rule_id``, a one-line ``title`` and a
``check(ctx)`` method returning findings.  Rules are registered with the
:func:`register` decorator; the engine instantiates every registered
rule per run (rules may keep per-file scratch state).
"""

from __future__ import annotations

import ast
from typing import Iterable, Type

from repro.lint.findings import SEVERITY_ERROR, Finding


class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.module = module_name_for(path)

    def finding(
        self,
        node: ast.AST,
        rule: str,
        message: str,
        severity: str = SEVERITY_ERROR,
    ) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
            severity=severity,
        )

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def module_name_for(path: str) -> str:
    """Best-effort dotted module name for a file path.

    Files under a ``repro`` package directory map to their real dotted
    name (``.../src/repro/sim/engine.py`` -> ``repro.sim.engine``);
    anything else (tests, fixtures) maps to its stem.
    """
    parts = path.replace("\\", "/").split("/")
    if "repro" in parts:
        rel = parts[parts.index("repro") :]
        if rel[-1] == "__init__.py":
            rel = rel[:-1]
        elif rel[-1].endswith(".py"):
            rel[-1] = rel[-1][:-3]
        return ".".join(rel)
    stem = parts[-1]
    return stem[:-3] if stem.endswith(".py") else stem


class LintRule:
    """Base class for all static rules."""

    rule_id: str = "XXX000"
    title: str = ""

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError  # EXC001: abstract-method contract


_REGISTRY: dict[str, Type[LintRule]] = {}


def register(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the global registry."""
    _REGISTRY[cls.rule_id] = cls
    return cls


def rules_by_id() -> dict[str, Type[LintRule]]:
    """The registry (importing the rule modules populates it)."""
    _load_builtin_rules()
    return dict(_REGISTRY)


def all_rules(select: Iterable[str] | None = None) -> list[LintRule]:
    """Instantiate registered rules, optionally a subset by id."""
    registry = rules_by_id()
    if select is None:
        return [cls() for cls in registry.values()]
    unknown = [rule_id for rule_id in select if rule_id not in registry]
    if unknown:
        from repro.errors import LintError

        raise LintError(f"unknown lint rule(s): {', '.join(sorted(unknown))}")
    return [registry[rule_id]() for rule_id in select]


def _load_builtin_rules() -> None:
    # Imported lazily so `rules` itself stays import-cycle-free.
    from repro.lint import (  # noqa: F401
        rules_determinism,
        rules_exceptions,
        rules_sim,
        rules_units,
    )
