"""Finding records and inline-suppression bookkeeping.

A finding pins one rule violation to a file/line/column.  Suppressions
are comment-driven so they live next to the code they excuse:

* ``# lint: disable=RULE[,RULE...]`` — suppresses matching findings on
  that physical line (put it on the line the linter reports).
* ``# lint: disable-file=RULE[,RULE...]`` — suppresses a rule for the
  whole file; reserved for modules that *are* the authority the rule
  defends (e.g. :mod:`repro.units` legitimately mixes unit suffixes).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import asdict, dataclass

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = SEVERITY_ERROR

    def to_dict(self) -> dict:
        return asdict(self)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


_LINE_RE = re.compile(r"#\s*lint:\s*disable=([A-Z]+[0-9]*(?:\s*,\s*[A-Z]+[0-9]*)*)")
_FILE_RE = re.compile(r"#\s*lint:\s*disable-file=([A-Z]+[0-9]*(?:\s*,\s*[A-Z]+[0-9]*)*)")


def _split(group: str) -> set[str]:
    return {rule.strip() for rule in group.split(",") if rule.strip()}


#: Sentinel line number for file-level (``disable-file=``) suppressions.
FILE_LEVEL = 0


def _comment_lines(source: str) -> list[tuple[int, str]]:
    """(line, text) of every real comment token.

    Tokenizing keeps suppression syntax inside string literals inert
    (test code quotes it constantly); source that will not tokenize
    falls back to a plain line scan so suppressions still work in files
    the parser rejects.
    """
    try:
        return [
            (token.start[0], token.string)
            for token in tokenize.generate_tokens(io.StringIO(source).readline)
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return list(enumerate(source.splitlines(), start=1))


class SuppressionIndex:
    """Per-file map of which rules are disabled on which lines.

    The index also tracks *usage*: every suppression that actually hides
    a finding is recorded, so the engine can report stale
    ``# lint: disable=RULE`` comments (rule LINT001) that no longer
    excuse anything.
    """

    def __init__(self, source: str) -> None:
        self.line_rules: dict[int, set[str]] = {}
        self.file_rules: set[str] = set()
        #: rule -> line of the ``disable-file=`` comment declaring it.
        self.file_rule_lines: dict[str, int] = {}
        #: (line, rule) pairs that suppressed at least one finding;
        #: file-level usage is recorded with line ``FILE_LEVEL``.
        self.used: set[tuple[int, str]] = set()
        for lineno, text in _comment_lines(source):
            file_match = _FILE_RE.search(text)
            if file_match:
                for rule in _split(file_match.group(1)):
                    self.file_rules.add(rule)
                    self.file_rule_lines.setdefault(rule, lineno)
                continue
            line_match = _LINE_RE.search(text)
            if line_match:
                self.line_rules.setdefault(lineno, set()).update(
                    _split(line_match.group(1))
                )

    def suppresses(self, finding: Finding) -> bool:
        """Whether ``finding`` is excused; marks the suppression used."""
        if finding.rule in self.file_rules:
            self.used.add((FILE_LEVEL, finding.rule))
            return True
        if finding.rule in self.line_rules.get(finding.line, ()):
            self.used.add((finding.line, finding.rule))
            return True
        return False

    def mark_used(self, line: int, rule: str) -> None:
        """Replay a recorded usage (e.g. from a cached analysis run)."""
        self.used.add((line, rule))

    def unused(self, checkable: set[str]) -> list[tuple[int, str]]:
        """(line, rule) of declared-but-unused suppressions.

        Only rules in ``checkable`` (the rules that actually ran) are
        reported: an inactive rule cannot prove its suppressions stale.
        File-level entries report the line of the declaring comment.
        """
        stale: list[tuple[int, str]] = []
        for lineno, rules in self.line_rules.items():
            for rule in rules:
                if rule in checkable and (lineno, rule) not in self.used:
                    stale.append((lineno, rule))
        for rule in sorted(self.file_rules):
            if rule in checkable and (FILE_LEVEL, rule) not in self.used:
                stale.append((self.file_rule_lines[rule], rule))
        return sorted(stale)
