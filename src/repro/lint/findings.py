"""Finding records and inline-suppression bookkeeping.

A finding pins one rule violation to a file/line/column.  Suppressions
are comment-driven so they live next to the code they excuse:

* ``# lint: disable=RULE[,RULE...]`` — suppresses matching findings on
  that physical line (put it on the line the linter reports).
* ``# lint: disable-file=RULE[,RULE...]`` — suppresses a rule for the
  whole file; reserved for modules that *are* the authority the rule
  defends (e.g. :mod:`repro.units` legitimately mixes unit suffixes).
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = SEVERITY_ERROR

    def to_dict(self) -> dict:
        return asdict(self)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


_LINE_RE = re.compile(r"#\s*lint:\s*disable=([A-Z]+[0-9]*(?:\s*,\s*[A-Z]+[0-9]*)*)")
_FILE_RE = re.compile(r"#\s*lint:\s*disable-file=([A-Z]+[0-9]*(?:\s*,\s*[A-Z]+[0-9]*)*)")


def _split(group: str) -> set[str]:
    return {rule.strip() for rule in group.split(",") if rule.strip()}


class SuppressionIndex:
    """Per-file map of which rules are disabled on which lines."""

    def __init__(self, source: str) -> None:
        self.line_rules: dict[int, set[str]] = {}
        self.file_rules: set[str] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            file_match = _FILE_RE.search(text)
            if file_match:
                self.file_rules |= _split(file_match.group(1))
                continue
            line_match = _LINE_RE.search(text)
            if line_match:
                self.line_rules[lineno] = _split(line_match.group(1))

    def suppresses(self, finding: Finding) -> bool:
        if finding.rule in self.file_rules:
            return True
        return finding.rule in self.line_rules.get(finding.line, ())
