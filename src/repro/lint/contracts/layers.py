"""Import-boundary rule (CON010).

The manifest declares a layer DAG: ``assign`` maps layer names to
module-name prefixes, ``allow`` maps each layer to the layers it may
import *at module scope*.  A module-level import from an assigned layer
into a layer outside its allow list is CON010 (error): it is exactly the
coupling that would make a second architecture model (ROADMAP item 4)
drag the bench/obs/lint stack along with it.

Deliberate escape hatches, matching the tree's established idiom:

* imports inside a function body are lazy and exempt — the documented
  way for a low layer to reach optional high-layer machinery;
* ``if TYPE_CHECKING:`` blocks are annotation-only and exempt;
* modules not matched by any ``assign`` prefix are unconstrained.

Manifest-health findings ride under the same rule id: an ``allow``
graph cycle (the DAG must be a DAG) and an ``assign`` prefix matching
no analyzed module (a rename must not silently drop enforcement).
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.flow.graph import Program

from repro.lint.contracts.manifest import ContractsManifest

RULE_LAYER = "CON010"


def _imported_modules(
    stmt: ast.stmt, module_name: str, is_package: bool
) -> list[str]:
    """Dotted module names a single import statement binds."""
    if isinstance(stmt, ast.Import):
        return [alias.name for alias in stmt.names]
    if isinstance(stmt, ast.ImportFrom):
        if stmt.level:
            # Relative import: "from . import x" (level 1) resolves
            # against the importing module's package, ".." one up, etc.
            # A package's own name *is* its package, so __init__ files
            # drop one level fewer.
            drop = stmt.level - (1 if is_package else 0)
            parts = module_name.split(".")
            parts = parts[: len(parts) - drop] if drop else parts
            prefix = ".".join(parts + ([stmt.module] if stmt.module else []))
            return [prefix] if prefix else []
        return [stmt.module] if stmt.module else []
    return []


def _is_type_checking_guard(test: ast.expr) -> bool:
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    return (
        isinstance(test, ast.Attribute)
        and test.attr == "TYPE_CHECKING"
    )


def _module_level_imports(
    tree: ast.Module, module_name: str, is_package: bool
) -> list[tuple[ast.stmt, str]]:
    """(statement, imported dotted name) pairs at module scope.

    Recurses into module-level ``if``/``try`` bodies (conditional imports
    are still imports at module scope) but skips ``if TYPE_CHECKING:``.
    """
    out: list[tuple[ast.stmt, str]] = []

    def walk(body: list[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for name in _imported_modules(stmt, module_name, is_package):
                    out.append((stmt, name))
            elif isinstance(stmt, ast.If):
                if not _is_type_checking_guard(stmt.test):
                    walk(stmt.body)
                walk(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                walk(stmt.body)
                for handler in stmt.handlers:
                    walk(handler.body)
                walk(stmt.orelse)
                walk(stmt.finalbody)

    walk(tree.body)
    return out


def check_layers(program: Program, manifest: ContractsManifest) -> list[Finding]:
    """CON010 findings over every analyzed module."""
    layers = manifest.layers
    if not layers.assign:
        return []
    findings: list[Finding] = []
    manifest_path = manifest.path or "lint-contracts.pairs.json"

    cycle = layers.cycle()
    if cycle is not None:
        findings.append(
            Finding(
                path=manifest_path,
                line=1,
                col=0,
                rule=RULE_LAYER,
                message=(
                    "layer manifest health: allow graph has a cycle "
                    f"({' -> '.join(cycle)}); the layer graph must be a DAG"
                ),
            )
        )

    matched_prefixes: set[str] = set()
    for mod in program.modules.values():
        for prefixes in layers.assign.values():
            for prefix in prefixes:
                if mod.name == prefix or mod.name.startswith(prefix + "."):
                    matched_prefixes.add(prefix)

    for mod in sorted(program.modules.values(), key=lambda m: m.name):
        src_layer = layers.layer_of(mod.name)
        if src_layer is None or mod.parsed.ctx is None:
            continue
        allowed = set(layers.allow.get(src_layer, ())) | {src_layer}
        is_package = mod.parsed.path.replace("\\", "/").endswith("/__init__.py")
        imports = _module_level_imports(mod.parsed.ctx.tree, mod.name, is_package)
        for stmt, target in imports:
            dst_layer = layers.layer_of(target)
            if dst_layer is None or dst_layer in allowed:
                continue
            findings.append(
                Finding(
                    path=mod.parsed.path,
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    rule=RULE_LAYER,
                    message=(
                        f"layer boundary violation: {mod.name} (layer "
                        f"'{src_layer}') imports {target} (layer "
                        f"'{dst_layer}') at module scope; layer "
                        f"'{src_layer}' may import only "
                        f"{sorted(allowed - {src_layer}) or 'nothing'} — "
                        "move the import inside the function that needs it "
                        "or change the declared DAG"
                    ),
                )
            )

    for layer, prefixes in sorted(layers.assign.items()):
        for prefix in prefixes:
            if prefix not in matched_prefixes:
                findings.append(
                    Finding(
                        path=manifest_path,
                        line=1,
                        col=0,
                        rule=RULE_LAYER,
                        message=(
                            f"layer manifest health: assign prefix "
                            f"{prefix!r} (layer '{layer}') matches no "
                            "analyzed module; fix the prefix or drop it"
                        ),
                    )
                )
    return findings
