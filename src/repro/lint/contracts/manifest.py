"""The contracts manifest: backend pairs and the layer DAG.

``lint-contracts.pairs.json`` is the committed, reviewable declaration
of the codebase's structural contracts:

* ``pairs`` — backend implementation pairs that must stay
  interface-identical (``Simulator`` ↔ ``BatchedSimulator``, ...).
  Each entry names the ``reference`` and ``candidate`` class by
  qualified name, with optional ``ignore_methods`` / ``ignore_fields``
  escape lists (every use should say why in ``reason``).
* ``layers`` — the import-boundary DAG: ``assign`` maps a layer name to
  module-name prefixes, ``allow`` maps a layer to the layers it may
  import at module scope.  Unassigned modules are unconstrained;
  imports inside functions (the tree's deliberate lazy-import idiom)
  and ``if TYPE_CHECKING:`` blocks are exempt.
* ``tests_root`` — directory scanned for validator references by the
  CON021 reachability check (default ``tests`` when it exists).

Like the effects region manifest, editing this file invalidates the
digest-keyed result cache, and entries that match nothing in the
analyzed tree are themselves findings — a rename cannot silently drop
enforcement.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.errors import LintError

#: Default manifest filename, looked up in the working directory.
DEFAULT_MANIFEST = "lint-contracts.pairs.json"

#: Default registry-snapshot filename (see :mod:`.schemas`).
DEFAULT_REGISTRY = "lint-contracts.schemas.json"

MANIFEST_VERSION = 1


@dataclass(frozen=True)
class PairDecl:
    """One declared backend pair (reference ↔ candidate class)."""

    reference: str
    candidate: str
    reason: str = ""
    ignore_methods: frozenset[str] = frozenset()
    ignore_fields: frozenset[str] = frozenset()


@dataclass
class LayerDecl:
    """The declared layer DAG."""

    #: layer name -> module-name prefixes assigned to it.
    assign: dict[str, list[str]] = field(default_factory=dict)
    #: layer name -> layer names it may import at module scope.
    allow: dict[str, list[str]] = field(default_factory=dict)

    def layer_of(self, module_name: str) -> str | None:
        """The layer ``module_name`` is assigned to, if any."""
        for layer, prefixes in self.assign.items():
            for prefix in prefixes:
                if module_name == prefix or module_name.startswith(prefix + "."):
                    return layer
        return None

    def cycle(self) -> list[str] | None:
        """A cycle in the ``allow`` graph, if one exists (it must not)."""
        WHITE, GREY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self.assign}
        trail: list[str] = []

        def visit(name: str) -> list[str] | None:
            color[name] = GREY
            trail.append(name)
            for dep in self.allow.get(name, []):
                if dep not in color:
                    continue
                if color[dep] == GREY:
                    return trail[trail.index(dep) :] + [dep]
                if color[dep] == WHITE:
                    found = visit(dep)
                    if found is not None:
                        return found
            trail.pop()
            color[name] = BLACK
            return None

        for name in self.assign:
            if color[name] == WHITE:
                found = visit(name)
                if found is not None:
                    return found
        return None


@dataclass
class ContractsManifest:
    """Parsed contracts manifest plus its source path."""

    path: str | None = None
    pairs: list[PairDecl] = field(default_factory=list)
    layers: LayerDecl = field(default_factory=LayerDecl)
    tests_root: str | None = None


def _parse_pair(entry: object, path: str) -> PairDecl:
    if not (
        isinstance(entry, dict)
        and isinstance(entry.get("reference"), str)
        and isinstance(entry.get("candidate"), str)
    ):
        raise LintError(
            f"contracts manifest {path}: every 'pairs' entry needs "
            "'reference' and 'candidate' qualified class names"
        )
    return PairDecl(
        reference=entry["reference"],
        candidate=entry["candidate"],
        reason=str(entry.get("reason", "")),
        ignore_methods=frozenset(map(str, entry.get("ignore_methods", []))),
        ignore_fields=frozenset(map(str, entry.get("ignore_fields", []))),
    )


def _parse_layers(doc: object, path: str) -> LayerDecl:
    if doc is None:
        return LayerDecl()
    if not isinstance(doc, dict):
        raise LintError(f"contracts manifest {path}: 'layers' must be an object")
    assign_raw = doc.get("assign", {})
    allow_raw = doc.get("allow", {})
    if not isinstance(assign_raw, dict) or not isinstance(allow_raw, dict):
        raise LintError(
            f"contracts manifest {path}: layers.assign and layers.allow "
            "must be objects"
        )
    assign = {
        str(layer): [str(p) for p in prefixes]
        for layer, prefixes in assign_raw.items()
    }
    allow = {
        str(layer): [str(d) for d in deps] for layer, deps in allow_raw.items()
    }
    for layer, deps in allow.items():
        if layer not in assign:
            raise LintError(
                f"contracts manifest {path}: layers.allow names "
                f"undeclared layer {layer!r}"
            )
        for dep in deps:
            if dep not in assign:
                raise LintError(
                    f"contracts manifest {path}: layer {layer!r} allows "
                    f"undeclared layer {dep!r}"
                )
    return LayerDecl(assign=assign, allow=allow)


def load_manifest(path: str | None) -> ContractsManifest:
    """Load the contracts manifest.

    ``path=None`` falls back to :data:`DEFAULT_MANIFEST` when present;
    an explicitly-named missing file is an error, a missing default is
    an empty manifest (nothing to enforce).
    """
    if path is None:
        if not os.path.exists(DEFAULT_MANIFEST):
            return ContractsManifest()
        path = DEFAULT_MANIFEST
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        raise LintError(f"cannot read contracts manifest {path}: {err}") from err
    if not isinstance(doc, dict):
        raise LintError(f"contracts manifest {path}: top level must be an object")
    manifest = ContractsManifest(path=path)
    for entry in doc.get("pairs", []):
        manifest.pairs.append(_parse_pair(entry, path))
    manifest.layers = _parse_layers(doc.get("layers"), path)
    tests_root = doc.get("tests_root")
    if tests_root is not None and not isinstance(tests_root, str):
        raise LintError(f"contracts manifest {path}: tests_root must be a string")
    if tests_root is None and os.path.isdir("tests"):
        tests_root = "tests"
    manifest.tests_root = tests_root
    return manifest


def manifest_digest_text(path: str | None) -> str:
    """Canonical manifest text for the result-cache key ("" when absent)."""
    manifest = load_manifest(path)
    return json.dumps(
        [
            [
                [p.reference, p.candidate, p.reason]
                + [sorted(p.ignore_methods), sorted(p.ignore_fields)]
                for p in manifest.pairs
            ],
            sorted((k, sorted(v)) for k, v in manifest.layers.assign.items()),
            sorted((k, sorted(v)) for k, v in manifest.layers.allow.items()),
            manifest.tests_root,
        ]
    )
