"""Whole-program structural-contract analysis.

Third pass on the :mod:`repro.lint.flow` symbol/call graph, proving the
contracts that keep N parallel implementations honest *before* any
simulation runs:

* **parity** (CON001/CON002) — registered backend pairs from
  ``lint-contracts.pairs.json`` must agree in public method set,
  signature shape, constructor-visible state, and effect summary;
* **layering** (CON010) — module-scope imports must respect the
  declared layer DAG (``core``/``sim``/``power``/``machine`` never pull
  in ``bench``/``obs``/``lint``/``cli``);
* **schema registry** (CON020/CON021) — every ``"schema"`` family has
  exactly one writer and one validator, field-set drift requires a
  version bump recorded in ``lint-contracts.schemas.json``, and every
  validator is exercised by some test.

Public surface mirrors :mod:`repro.lint.effects`: rule tables,
:func:`analyze_modules` (digest-keyed cache + fingerprinted baseline),
and :func:`analyze_paths` for tests and tooling.  The cache key hashes
every source, both manifests, and the test corpus (CON021 reads it), so
editing any input is as invalidating as editing code.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import CacheError
from repro.lint.engine import ParsedModule
from repro.lint.findings import Finding
from repro.lint.flow.baseline import load_baseline, split_baselined, write_baseline
from repro.lint.flow.graph import build_program
from repro.lint.effects.summaries import summarize_program
from repro.lint.contracts.layers import RULE_LAYER, check_layers
from repro.lint.contracts.manifest import (
    load_manifest,
    manifest_digest_text,
)
from repro.lint.contracts.parity import (
    RULE_PAIR_DRIFT,
    RULE_PAIR_EFFECT,
    check_pairs,
)
from repro.lint.contracts.schemas import (
    RULE_DEAD_VALIDATOR,
    RULE_REGISTRY,
    check_registry,
    extract_registry,
    load_snapshot,
    tests_digest_text,
    write_snapshot,
)

#: Bump to invalidate every cached analysis result.
CONTRACTS_VERSION = 1

CONTRACTS_RULE_TITLES: dict[str, str] = {
    RULE_PAIR_DRIFT: "backend pair drifts in public interface or state",
    RULE_PAIR_EFFECT: "backend pair method differs in effect summary",
    RULE_LAYER: "module-scope import crosses a declared layer boundary",
    RULE_REGISTRY: "schema family violates the committed registry snapshot",
    RULE_DEAD_VALIDATOR: "schema validator referenced by no test",
}

CONTRACTS_RULE_IDS = set(CONTRACTS_RULE_TITLES)


@dataclass
class ContractsReport:
    """Outcome of one whole-program contracts analysis."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    modules: int = 0
    pairs: int = 0
    layers: int = 0
    schemas: int = 0
    cache_hit: bool = False
    duration_s: float = 0.0

    def stats(self) -> dict[str, Any]:
        return {
            "modules": self.modules,
            "pairs": self.pairs,
            "layers": self.layers,
            "schemas": self.schemas,
            "findings": len(self.findings),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "cache_hit": self.cache_hit,
            "duration_s": round(self.duration_s, 3),
        }


def contracts_cache_key(
    modules: Sequence[ParsedModule],
    manifest_path: str | None,
    registry_path: str | None,
) -> str:
    """Digest of analyzer version, every source, both manifests, and the
    CON021 test corpus."""
    manifest = load_manifest(manifest_path)
    loaded = load_snapshot(registry_path)
    hasher = hashlib.sha256()
    hasher.update(f"contracts-v{CONTRACTS_VERSION}".encode())
    hasher.update(manifest_digest_text(manifest_path).encode())
    hasher.update(
        json.dumps(loaded[1] if loaded else None, sort_keys=True).encode()
    )
    hasher.update(
        hashlib.sha256(
            tests_digest_text(manifest.tests_root).encode("utf-8")
        ).hexdigest().encode()
    )
    for parsed in sorted(modules, key=lambda m: m.path):
        digest = hashlib.sha256(parsed.source.encode("utf-8")).hexdigest()
        hasher.update(json.dumps([parsed.path, digest]).encode())
    return f"lintcontracts-{hasher.hexdigest()}"


def _open_cache():
    from repro.cache.store import ResultCache

    try:
        return ResultCache()
    except CacheError:
        return None


def _analyze(
    modules: list[ParsedModule],
    manifest_path: str | None,
    registry_path: str | None,
) -> tuple[ContractsReport, dict[str, Any]]:
    """Run the analyzer; returns the report and a cacheable document."""
    program = build_program(modules)
    manifest = load_manifest(manifest_path)
    summaries = summarize_program(program) if manifest.pairs else None

    raw: list[Finding] = []
    raw.extend(check_pairs(program, manifest, summaries))
    raw.extend(check_layers(program, manifest))
    registry_findings, registry = check_registry(
        program, manifest, registry_path
    )
    raw.extend(registry_findings)
    raw.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    by_path = {m.path: m for m in modules}
    kept: list[Finding] = []
    suppressed = 0
    uses: list[list] = []
    for finding in raw:
        parsed = by_path.get(finding.path)
        if parsed is not None:
            before = set(parsed.suppressions.used)
            if parsed.suppressions.suppresses(finding):
                suppressed += 1
                for line, rule in parsed.suppressions.used - before:
                    uses.append([finding.path, line, rule])
                continue
        kept.append(finding)
    report = ContractsReport(
        findings=kept,
        suppressed=suppressed,
        modules=len(program.modules),
        pairs=len(manifest.pairs),
        layers=len(manifest.layers.assign),
        schemas=len(registry.schemas()),
    )
    doc = {
        "version": CONTRACTS_VERSION,
        "findings": [f.to_dict() for f in kept],
        "suppressed": suppressed,
        "suppression_uses": uses,
        "modules": report.modules,
        "pairs": report.pairs,
        "layers": report.layers,
        "schemas": report.schemas,
    }
    return report, doc


def _replay(doc: dict[str, Any], modules: list[ParsedModule]) -> ContractsReport:
    """Rebuild a report from a cached document, replaying suppressions."""
    by_path = {m.path: m for m in modules}
    for path, line, rule in doc.get("suppression_uses", []):
        parsed = by_path.get(path)
        if parsed is not None:
            parsed.suppressions.mark_used(line, rule)
    findings = [Finding(**f) for f in doc.get("findings", [])]
    return ContractsReport(
        findings=findings,
        suppressed=int(doc.get("suppressed", 0)),
        modules=int(doc.get("modules", 0)),
        pairs=int(doc.get("pairs", 0)),
        layers=int(doc.get("layers", 0)),
        schemas=int(doc.get("schemas", 0)),
        cache_hit=True,
    )


def analyze_modules(
    modules: Sequence[ParsedModule],
    *,
    use_cache: bool = True,
    baseline_path: str | None = None,
    update_baseline: bool = False,
    manifest_path: str | None = None,
    registry_path: str | None = None,
    update_registry: bool = False,
) -> ContractsReport:
    """Whole-program contracts analysis over parsed modules.

    The baseline is applied *after* the cache, exactly like the flow and
    effects passes: cached documents store raw findings, so editing the
    baseline never forces a re-analysis.  ``update_registry`` rewrites
    the schema snapshot from the tree *before* checking, so the run that
    records a version bump comes back clean.
    """
    started = time.perf_counter()  # lint: disable=DET001 (host-side analysis timing)
    analyzable = [m for m in modules if m.ctx is not None]

    if update_registry:
        program = build_program(analyzable)
        write_snapshot(registry_path, extract_registry(program))

    cache = _open_cache() if use_cache else None
    key = (
        contracts_cache_key(analyzable, manifest_path, registry_path)
        if cache is not None
        else ""
    )
    report: ContractsReport | None = None
    if cache is not None:
        try:
            doc = cache.get(key)
        except CacheError:
            doc = None
        if doc is not None and doc.get("version") == CONTRACTS_VERSION:
            report = _replay(doc, analyzable)
    if report is None:
        report, doc = _analyze(analyzable, manifest_path, registry_path)
        if cache is not None:
            try:
                cache.put(key, doc)
            except CacheError:
                pass

    if baseline_path is not None:
        if update_baseline:
            write_baseline(baseline_path, report.findings)
        accepted = load_baseline(baseline_path)
        report.findings, report.baselined = split_baselined(
            report.findings, accepted
        )
    report.duration_s = time.perf_counter() - started  # lint: disable=DET001 (host-side analysis timing)
    return report


def analyze_paths(paths: Sequence[str], **kwargs: Any) -> ContractsReport:
    """Parse every python file under ``paths`` and analyze them."""
    from repro.lint.engine import iter_python_files, parse_module, read_source

    modules = [
        parse_module(read_source(path), path) for path in iter_python_files(paths)
    ]
    return analyze_modules(modules, **kwargs)
