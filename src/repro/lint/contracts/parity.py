"""Backend-pair parity rules.

CON001 (error): a registered backend pair drifts in its *public
interface* — the effective public method set (resolved through the base
chain, so an inheriting candidate only answers for what it overrides or
adds), the signature of any method both sides define (positional
parameter names and order, keyword-only names, defaults count,
``*args``/``**kwargs`` presence, property-ness), or the
constructor-visible public state fields (``self.x = ...`` in ``__init__``
along the base chain).

CON002 (warning): a method defined on both sides whose *effect summary*
(:mod:`repro.lint.effects.summaries`) disagrees in raises /
mutates-global / reads-wall-clock.  A backend that can throw where its
pair cannot, or that touches the wall clock where its pair is pure, is
drifting semantically even if the signatures still line up.

Findings are pinned to the candidate side (the implementation being
held to the reference's contract) with the reference location quoted as
the witness, so one deleted method yields exactly one finding.
"""

from __future__ import annotations

import ast

from repro.lint.findings import SEVERITY_WARNING, Finding
from repro.lint.flow.graph import ClassInfo, FuncInfo, Program

from repro.lint.contracts.manifest import ContractsManifest, PairDecl

RULE_PAIR_DRIFT = "CON001"
RULE_PAIR_EFFECT = "CON002"

#: Dunders that are representation/identity plumbing, not backend
#: contract surface.
_EXEMPT_DUNDERS = {
    "__repr__",
    "__str__",
    "__hash__",
    "__eq__",
    "__ne__",
    "__new__",
    "__init_subclass__",
    "__class_getitem__",
    "__slots__",
}

#: Effect-summary bits CON002 compares between paired methods.
_EFFECT_BITS = (
    ("t_raises", "raises"),
    ("t_mutates_global", "mutates a global"),
    ("t_reads_wall_clock", "reads the wall clock"),
)


def _is_public(name: str) -> bool:
    if name.startswith("__") and name.endswith("__"):
        return name not in _EXEMPT_DUNDERS
    return not name.startswith("_")


def _effective_methods(program: Program, cls: ClassInfo) -> dict[str, FuncInfo]:
    """Public method name -> FuncInfo, resolved through the base chain
    (nearest definition wins, BFS over linked bases)."""
    methods: dict[str, FuncInfo] = {}
    seen: set[str] = set()
    queue = [cls.qname]
    while queue:
        qname = queue.pop(0)
        if qname in seen:
            continue
        seen.add(qname)
        info = program.classes.get(qname)
        if info is None:
            continue
        for name, func in info.methods.items():
            if _is_public(name):
                methods.setdefault(name, func)
        queue.extend(info.bases)
    return methods


def _init_fields(program: Program, cls: ClassInfo) -> set[str]:
    """Public ``self.x`` names assigned in any ``__init__`` along the
    base chain (the constructor-visible state surface)."""
    fields: set[str] = set()
    seen: set[str] = set()
    queue = [cls.qname]
    while queue:
        qname = queue.pop(0)
        if qname in seen:
            continue
        seen.add(qname)
        info = program.classes.get(qname)
        if info is None:
            continue
        init = info.methods.get("__init__")
        if init is not None:
            for node in ast.walk(_holder(init)):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and _is_public(target.attr)
                    ):
                        fields.add(target.attr)
        queue.extend(info.bases)
    return fields


def _holder(func: FuncInfo) -> ast.AST:
    if func.node is not None:
        return func.node
    return ast.Module(body=func.body, type_ignores=[])


def _signature(func: FuncInfo) -> dict[str, object]:
    """The comparable shape of one method's signature.

    Defaulted underscore-prefixed parameters are dropped: they are the
    bind-time micro-optimization idiom (``def f(x, _len=len)``) — never
    part of the callable surface a pair must honour.
    """
    node = func.node
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = node.args
    all_pos = [*args.posonlyargs, *args.args]
    n_defaults = len(args.defaults)
    shaped: list[tuple[str, bool]] = [
        (a.arg, i >= len(all_pos) - n_defaults) for i, a in enumerate(all_pos)
    ]
    if shaped and shaped[0][0] in ("self", "cls"):
        shaped = shaped[1:]
    shaped = [
        (name, has_default)
        for name, has_default in shaped
        if not (has_default and name.startswith("_"))
    ]
    kwonly = sorted(
        a.arg
        for a, default in zip(args.kwonlyargs, args.kw_defaults)
        if not (default is not None and a.arg.startswith("_"))
    )
    return {
        "positional": [name for name, _ in shaped],
        "defaults": sum(1 for _, has_default in shaped if has_default),
        "kwonly": kwonly,
        "vararg": args.vararg.arg if args.vararg else None,
        "kwarg": args.kwarg.arg if args.kwarg else None,
        "property": func.is_property,
    }


def _describe_drift(ref_sig: dict, cand_sig: dict) -> str:
    """First human-readable difference between two signature shapes."""
    if ref_sig["positional"] != cand_sig["positional"]:
        return (
            f"positional parameters {cand_sig['positional']} != "
            f"reference {ref_sig['positional']}"
        )
    if ref_sig["kwonly"] != cand_sig["kwonly"]:
        return (
            f"keyword-only parameters {cand_sig['kwonly']} != "
            f"reference {ref_sig['kwonly']}"
        )
    if ref_sig["defaults"] != cand_sig["defaults"]:
        return (
            f"{cand_sig['defaults']} defaulted parameter(s) != "
            f"reference {ref_sig['defaults']}"
        )
    for slot in ("vararg", "kwarg"):
        if (ref_sig[slot] is None) != (cand_sig[slot] is None):
            star = "*" if slot == "vararg" else "**"
            return f"{star}-parameter presence differs from the reference"
    if ref_sig["property"] != cand_sig["property"]:
        return "one side is a @property, the other a plain method"
    return "signature shape differs"


def _manifest_finding(manifest: ContractsManifest, message: str) -> Finding:
    return Finding(
        path=manifest.path or "lint-contracts.pairs.json",
        line=1,
        col=0,
        rule=RULE_PAIR_DRIFT,
        message=message,
    )


def check_pairs(
    program: Program,
    manifest: ContractsManifest,
    summaries: dict | None,
) -> list[Finding]:
    """CON001/CON002 findings for every declared pair."""
    findings: list[Finding] = []
    for pair in manifest.pairs:
        findings.extend(_check_pair(program, manifest, pair, summaries))
    return findings


def _check_pair(
    program: Program,
    manifest: ContractsManifest,
    pair: PairDecl,
    summaries: dict | None,
) -> list[Finding]:
    ref = program.classes.get(pair.reference)
    cand = program.classes.get(pair.candidate)
    missing = [
        qname
        for qname, cls in ((pair.reference, ref), (pair.candidate, cand))
        if cls is None
    ]
    if missing:
        return [
            _manifest_finding(
                manifest,
                f"pair entry {pair.reference!r} ↔ {pair.candidate!r} names "
                f"unknown class(es) {', '.join(missing)}; fix the qualified "
                "name or drop the entry",
            )
        ]
    assert ref is not None and cand is not None

    findings: list[Finding] = []
    ref_methods = _effective_methods(program, ref)
    cand_methods = _effective_methods(program, cand)
    names = (set(ref_methods) | set(cand_methods)) - set(pair.ignore_methods)

    for name in sorted(names):
        ref_m = ref_methods.get(name)
        cand_m = cand_methods.get(name)
        if ref_m is None or cand_m is None:
            present, absent_cls, present_cls = (
                (cand_m, ref, cand) if ref_m is None else (ref_m, cand, ref)
            )
            assert present is not None
            findings.append(
                Finding(
                    path=absent_cls.module.parsed.path,
                    line=absent_cls.node.lineno,
                    col=absent_cls.node.col_offset,
                    rule=RULE_PAIR_DRIFT,
                    message=(
                        f"backend pair drift: {absent_cls.qname} has no "
                        f"public method '{name}' but its pair "
                        f"{present_cls.qname} defines it at "
                        f"{present.path}:{present.node.lineno}; implement it "
                        "or add it to the pair's ignore_methods with a reason"
                    ),
                )
            )
            continue
        if ref_m is cand_m:
            continue  # inherited from a shared base: trivially identical
        ref_sig, cand_sig = _signature(ref_m), _signature(cand_m)
        if ref_sig != cand_sig:
            findings.append(
                Finding(
                    path=cand_m.path,
                    line=cand_m.node.lineno,
                    col=cand_m.node.col_offset,
                    rule=RULE_PAIR_DRIFT,
                    message=(
                        f"backend pair drift: {cand.qname}.{name} signature "
                        f"disagrees with {ref.qname}.{name} "
                        f"({ref_m.path}:{ref_m.node.lineno}): "
                        + _describe_drift(ref_sig, cand_sig)
                    ),
                )
            )
        elif summaries is not None:
            ref_sum = summaries.get(ref_m.qname)
            cand_sum = summaries.get(cand_m.qname)
            if ref_sum is not None and cand_sum is not None:
                for attr, label in _EFFECT_BITS:
                    ref_bit = getattr(ref_sum, attr)
                    cand_bit = getattr(cand_sum, attr)
                    if ref_bit != cand_bit:
                        side = cand.qname if cand_bit else ref.qname
                        findings.append(
                            Finding(
                                path=cand_m.path,
                                line=cand_m.node.lineno,
                                col=cand_m.node.col_offset,
                                rule=RULE_PAIR_EFFECT,
                                message=(
                                    f"backend pair effect drift: only "
                                    f"{side}.{name} {label} (pair at "
                                    f"{ref_m.path}:{ref_m.node.lineno}); "
                                    "backends must fail and touch state "
                                    "identically"
                                ),
                                severity=SEVERITY_WARNING,
                            )
                        )

    ref_fields = _init_fields(program, ref) - set(pair.ignore_fields)
    cand_fields = _init_fields(program, cand) - set(pair.ignore_fields)
    for name in sorted(ref_fields ^ cand_fields):
        absent_cls = cand if name in ref_fields else ref
        present_cls = ref if name in ref_fields else cand
        findings.append(
            Finding(
                path=absent_cls.module.parsed.path,
                line=absent_cls.node.lineno,
                col=absent_cls.node.col_offset,
                rule=RULE_PAIR_DRIFT,
                message=(
                    f"backend pair drift: constructor-visible field "
                    f"'{name}' exists only on {present_cls.qname}; assign "
                    f"it in {absent_cls.qname}.__init__ too or add it to "
                    "the pair's ignore_fields with a reason"
                ),
            )
        )
    return findings
