"""Schema-registry rules (CON020/CON021).

The tree's JSON interchange formats are schema-versioned: every emitted
document carries ``"schema": "repro.X/Y"`` and ``"schema_version": N``,
and every family has a validator that rejects foreign or stale
documents.  This module extracts that registry *statically*:

* a **writer** is a dict display with a ``"schema"`` key whose value
  resolves (through constants and import bindings, including the
  function-local lazy-import idiom) to a schema id string; its emitted
  field set is the dict's top-level constant keys;
* a **validator** is a comparison whose one operand is literally
  ``doc.get("schema")`` or ``doc["schema"]`` and whose other operand
  resolves to a schema id string.  Indirect compares through a local
  variable (the ``validate_document`` dispatcher idiom) deliberately do
  not count — a dispatcher is routing, not validation.

CON020 (error) holds the extracted registry against the committed
snapshot ``lint-contracts.schemas.json``:

* a schema id in the tree with no snapshot entry (or vice versa);
* more or fewer than exactly one writer / one validator per schema;
* a writer whose emitted field set changed while ``schema_version``
  did not — silent format drift, the exact failure mode the runtime
  validators cannot catch until a stale artifact is re-read;
* a version bump the snapshot has not caught up with (run
  ``--update-schema-registry``).

CON021 (warning): a validator no test file ever names — dead armor.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field

from repro.errors import LintError
from repro.lint.findings import SEVERITY_ERROR, SEVERITY_WARNING, Finding
from repro.lint.flow.graph import MODULE_BODY, FuncInfo, ModuleInfo, Program

from repro.lint.contracts.manifest import DEFAULT_REGISTRY, ContractsManifest

RULE_REGISTRY = "CON020"
RULE_DEAD_VALIDATOR = "CON021"

REGISTRY_VERSION = 1

#: Shape a string constant must have to count as a schema id.
_SCHEMA_PREFIX = "repro."


def _is_schema_id(value: object) -> bool:
    return (
        isinstance(value, str)
        and value.startswith(_SCHEMA_PREFIX)
        and "/" in value
    )


@dataclass
class WriterSite:
    """One dict display emitting a schema-tagged document."""

    schema: str
    qname: str  # enclosing function (or module body)
    path: str
    line: int
    col: int
    fields: tuple[str, ...]
    version: int | None


@dataclass
class ValidatorSite:
    """One ``doc.get("schema") == <id>`` comparison."""

    schema: str
    qname: str
    name: str  # bare function name, for test-reachability grep
    path: str
    line: int
    col: int


@dataclass
class ExtractedRegistry:
    """Everything the pass learned about schema families in the tree."""

    writers: dict[str, list[WriterSite]] = field(default_factory=dict)
    validators: dict[str, list[ValidatorSite]] = field(default_factory=dict)

    def schemas(self) -> set[str]:
        return set(self.writers) | set(self.validators)


# --------------------------------------------------------------------------
# Constant / binding resolution


def _module_constants(module: ModuleInfo) -> dict[str, object]:
    """Module-level ``NAME = <str|int>`` constants, by bare name."""
    consts: dict[str, object] = {}
    if module.parsed.ctx is None:
        return consts
    for stmt in module.parsed.ctx.tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        if not (
            isinstance(value, ast.Constant)
            and isinstance(value.value, (str, int))
            and not isinstance(value.value, bool)
        ):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                consts[target.id] = value.value
    return consts


def _local_import_bindings(func: FuncInfo) -> dict[str, str]:
    """name -> dotted target for imports inside the function body."""
    bindings: dict[str, str] = {}
    holder: ast.AST
    if func.node is not None:
        holder = func.node
    else:
        holder = ast.Module(body=func.body, type_ignores=[])
    for node in ast.walk(holder):
        if isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                bindings[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bindings[alias.asname or alias.name] = alias.name
    return bindings


class _ConstResolver:
    """Resolve a Name/Attribute/Constant expression to a constant value."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._consts: dict[str, dict[str, object]] = {
            name: _module_constants(mod) for name, mod in program.modules.items()
        }

    def _by_qname(self, dotted: str) -> object | None:
        module, _, name = dotted.rpartition(".")
        return self._consts.get(module, {}).get(name)

    def resolve(
        self, expr: ast.expr, func: FuncInfo, local_bindings: dict[str, str]
    ) -> object | None:
        if isinstance(expr, ast.Constant):
            return expr.value
        module = func.module
        if isinstance(expr, ast.Name):
            target = local_bindings.get(expr.id) or module.bindings.get(expr.id)
            if target is not None:
                value = self._by_qname(target)
                if value is not None:
                    return value
            return self._consts.get(module.name, {}).get(expr.id)
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            base = local_bindings.get(expr.value.id) or module.bindings.get(
                expr.value.id, expr.value.id
            )
            return self._by_qname(f"{base}.{expr.attr}")
        return None


# --------------------------------------------------------------------------
# Site extraction


def _dict_schema_entry(node: ast.Dict) -> tuple[ast.expr, tuple[str, ...]] | None:
    """(schema value expr, constant top-level keys) if the dict display
    carries a ``"schema"`` key."""
    schema_value: ast.expr | None = None
    keys: list[str] = []
    for key, value in zip(node.keys, node.values):
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.append(key.value)
            if key.value == "schema":
                schema_value = value
    if schema_value is None:
        return None
    return schema_value, tuple(sorted(keys))


def _is_schema_access(expr: ast.expr) -> bool:
    """Literally ``<x>.get("schema")`` or ``<x>["schema"]``."""
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr == "get"
        and expr.args
        and isinstance(expr.args[0], ast.Constant)
        and expr.args[0].value == "schema"
    ):
        return True
    return (
        isinstance(expr, ast.Subscript)
        and isinstance(expr.slice, ast.Constant)
        and expr.slice.value == "schema"
    )


def _walk_function(
    func: FuncInfo,
    resolver: _ConstResolver,
    registry: ExtractedRegistry,
) -> None:
    local_bindings = _local_import_bindings(func)
    holder: ast.AST
    if func.node is not None:
        holder = func.node
    else:
        holder = ast.Module(body=func.body, type_ignores=[])
    for node in ast.walk(holder):
        if isinstance(node, ast.Dict):
            entry = _dict_schema_entry(node)
            if entry is None:
                continue
            schema_expr, fields = entry
            schema = resolver.resolve(schema_expr, func, local_bindings)
            if not _is_schema_id(schema):
                continue
            version: int | None = None
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "schema_version"
                ):
                    resolved = resolver.resolve(value, func, local_bindings)
                    if isinstance(resolved, int):
                        version = resolved
            registry.writers.setdefault(str(schema), []).append(
                WriterSite(
                    schema=str(schema),
                    qname=func.qname,
                    path=func.path,
                    line=node.lineno,
                    col=node.col_offset,
                    fields=fields,
                    version=version,
                )
            )
        elif isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            if not any(_is_schema_access(op) for op in operands):
                continue
            for op in operands:
                if _is_schema_access(op):
                    continue
                schema = resolver.resolve(op, func, local_bindings)
                if _is_schema_id(schema):
                    registry.validators.setdefault(str(schema), []).append(
                        ValidatorSite(
                            schema=str(schema),
                            qname=func.qname,
                            name=func.qname.rsplit(".", 1)[-1],
                            path=func.path,
                            line=node.lineno,
                            col=node.col_offset,
                        )
                    )


def extract_registry(program: Program) -> ExtractedRegistry:
    """Scan every function and module body for writer/validator sites."""
    registry = ExtractedRegistry()
    resolver = _ConstResolver(program)
    for qname in sorted(program.functions):
        _walk_function(program.functions[qname], resolver, registry)
    for name in sorted(program.modules):
        body = program.modules[name].body
        if body is not None:
            _walk_function(body, resolver, registry)
    return registry


# --------------------------------------------------------------------------
# Snapshot load / compare / update


def load_snapshot(path: str | None) -> tuple[str, dict[str, dict]] | None:
    """(path, schema id -> entry) from the committed snapshot, or None
    when no snapshot exists (first run: CON020 asks for one)."""
    if path is None:
        if not os.path.exists(DEFAULT_REGISTRY):
            return None
        path = DEFAULT_REGISTRY
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        raise LintError(f"cannot read schema registry {path}: {err}") from err
    if not isinstance(doc, dict) or not isinstance(doc.get("schemas"), dict):
        raise LintError(
            f"schema registry {path}: expected an object with a "
            "'schemas' mapping"
        )
    return path, doc["schemas"]


def snapshot_document(registry: ExtractedRegistry) -> dict:
    """The registry snapshot document for ``--update-schema-registry``."""
    schemas: dict[str, dict] = {}
    for schema in sorted(registry.schemas()):
        writers = registry.writers.get(schema, [])
        validators = registry.validators.get(schema, [])
        entry: dict[str, object] = {
            "version": writers[0].version if writers else None,
            "writer": writers[0].qname if writers else None,
            "validator": validators[0].qname if validators else None,
            "fields": sorted(writers[0].fields) if writers else [],
        }
        schemas[schema] = entry
    return {"registry_version": REGISTRY_VERSION, "schemas": schemas}


def write_snapshot(path: str | None, registry: ExtractedRegistry) -> str:
    path = path or DEFAULT_REGISTRY
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot_document(registry), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _site_finding(
    site: WriterSite | ValidatorSite, message: str, *, rule: str = RULE_REGISTRY
) -> Finding:
    return Finding(
        path=site.path,
        line=site.line,
        col=site.col,
        rule=rule,
        message=message,
        severity=SEVERITY_WARNING
        if rule == RULE_DEAD_VALIDATOR
        else SEVERITY_ERROR,
    )


def check_registry(
    program: Program,
    manifest: ContractsManifest,
    registry_path: str | None,
) -> tuple[list[Finding], ExtractedRegistry]:
    """CON020/CON021 findings plus the extracted registry."""
    registry = extract_registry(program)
    findings: list[Finding] = []

    loaded = load_snapshot(registry_path)
    if loaded is None:
        for schema in sorted(registry.schemas()):
            sites = registry.writers.get(schema) or registry.validators.get(
                schema, []
            )
            findings.append(
                _site_finding(
                    sites[0],
                    f"schema {schema!r} has no committed registry entry; "
                    "run lint --contracts --update-schema-registry to "
                    f"record it in {DEFAULT_REGISTRY}",
                )
            )
        findings.extend(_check_dead_validators(registry, manifest))
        return findings, registry

    snap_path, snapshot = loaded

    for schema in sorted(registry.schemas()):
        writers = registry.writers.get(schema, [])
        validators = registry.validators.get(schema, [])
        any_site: WriterSite | ValidatorSite = (writers or validators)[0]

        if schema not in snapshot:
            findings.append(
                _site_finding(
                    any_site,
                    f"schema {schema!r} is not in the committed registry "
                    f"{snap_path}; run --update-schema-registry and review "
                    "the diff",
                )
            )
            continue
        entry = snapshot[schema]

        if len(writers) != 1:
            if not writers:
                findings.append(
                    _site_finding(
                        validators[0],
                        f"schema {schema!r} has a validator but no writer "
                        "in the analyzed tree; every schema needs exactly "
                        "one emitting site",
                    )
                )
            else:
                for extra in writers[1:]:
                    findings.append(
                        _site_finding(
                            extra,
                            f"schema {schema!r} has {len(writers)} writer "
                            f"sites (first at {writers[0].path}:"
                            f"{writers[0].line}); collapse them into one "
                            "shared envelope builder",
                        )
                    )
        if len(validators) != 1:
            if not validators:
                findings.append(
                    _site_finding(
                        writers[0],
                        f"schema {schema!r} has a writer but no validator; "
                        "add a validate_* function that checks "
                        'doc.get("schema") against the id',
                    )
                )
            else:
                for extra in validators[1:]:
                    findings.append(
                        _site_finding(
                            extra,
                            f"schema {schema!r} has {len(validators)} "
                            "validator sites (first at "
                            f"{validators[0].path}:{validators[0].line}); "
                            "keep exactly one",
                        )
                    )

        if len(writers) == 1:
            writer = writers[0]
            snap_fields = sorted(map(str, entry.get("fields", [])))
            snap_version = entry.get("version")
            if writer.version == snap_version and sorted(
                writer.fields
            ) != snap_fields:
                added = sorted(set(writer.fields) - set(snap_fields))
                removed = sorted(set(snap_fields) - set(writer.fields))
                delta = "; ".join(
                    part
                    for part in (
                        f"added {added}" if added else "",
                        f"removed {removed}" if removed else "",
                    )
                    if part
                )
                findings.append(
                    _site_finding(
                        writer,
                        f"schema {schema!r} writer field set changed "
                        f"({delta}) without a schema_version bump (still "
                        f"v{writer.version}); bump the version constant and "
                        "run --update-schema-registry",
                    )
                )
            elif writer.version != snap_version:
                findings.append(
                    _site_finding(
                        writer,
                        f"schema {schema!r} is at v{writer.version} in code "
                        f"but the registry snapshot records "
                        f"v{snap_version}; run --update-schema-registry to "
                        "record the bump",
                    )
                )

    for schema in sorted(set(snapshot) - registry.schemas()):
        findings.append(
            Finding(
                path=snap_path,
                line=1,
                col=0,
                rule=RULE_REGISTRY,
                message=(
                    f"registry snapshot entry {schema!r} matches no writer "
                    "or validator in the analyzed tree; run "
                    "--update-schema-registry to drop it"
                ),
            )
        )

    findings.extend(_check_dead_validators(registry, manifest))
    return findings, registry


# --------------------------------------------------------------------------
# CON021: test reachability


def tests_digest_text(tests_root: str | None) -> str:
    """Concatenated test-file text, folded into the cache key so editing
    a test re-evaluates CON021."""
    if tests_root is None or not os.path.isdir(tests_root):
        return ""
    chunks: list[str] = []
    for dirpath, dirnames, filenames in os.walk(tests_root):
        dirnames.sort()
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                path = os.path.join(dirpath, filename)
                try:
                    with open(path, encoding="utf-8") as handle:
                        chunks.append(handle.read())
                except OSError:
                    continue
    return "\n".join(chunks)


def _check_dead_validators(
    registry: ExtractedRegistry, manifest: ContractsManifest
) -> list[Finding]:
    tests_root = manifest.tests_root
    if tests_root is None or not os.path.isdir(tests_root):
        return []
    corpus = tests_digest_text(tests_root)
    findings: list[Finding] = []
    for schema in sorted(registry.validators):
        for site in registry.validators[schema]:
            if site.name == MODULE_BODY:
                continue
            if site.name not in corpus:
                findings.append(
                    _site_finding(
                        site,
                        f"validator {site.qname} for schema {schema!r} is "
                        f"referenced by no test under {tests_root}/; an "
                        "unexercised validator rots silently — add a test "
                        "that feeds it a good and a bad document",
                        rule=RULE_DEAD_VALIDATOR,
                    )
                )
    return findings
