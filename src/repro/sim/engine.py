"""The discrete-event simulator core.

A :class:`Simulator` owns the clock and the event queue.  Machine
components register callbacks; experiments drive time forward.  Unlike
generator-based frameworks (simpy), everything here is plain callbacks —
the machine model's state machines are explicit, which keeps hot paths
cheap (the frequency-transition experiment schedules hundreds of thousands
of events per run).
"""

from __future__ import annotations

import operator
from heapq import heappop
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue


def _as_int_ns(value: Any, what: str) -> int:
    """Coerce a nanosecond count to int, rejecting floats at the boundary.

    Accepts anything with ``__index__`` (int, numpy integers); rejects
    floats so representation drift cannot creep into the integer clock
    (DESIGN.md §7).  Convert explicitly via :mod:`repro.units` instead.
    """
    if type(value) is int:
        return value
    try:
        return operator.index(value)
    except TypeError:
        raise SimulationError(
            f"{what} must be an integer nanosecond count, got "
            f"{type(value).__name__} {value!r}; convert with repro.units "
            "(us/ms/s) or round() explicitly"
        ) from None


class Simulator:
    """Integer-nanosecond discrete-event simulator.

    ``tiebreak_rng`` (a seeded generator from
    :class:`repro.sim.rng.RngFactory`) enables event-order shuffle mode:
    same-timestamp ties fire in a seeded-random order instead of
    scheduling order.  See :mod:`repro.lint.shuffle`.

    ``backend`` selects the dispatch engine: constructing the base class
    returns an instance of the resolved backend's simulator class
    (``Simulator(backend="batched")`` is a
    :class:`repro.sim.batched.BatchedSimulator`).  ``None`` falls back to
    the ``REPRO_SIM_BACKEND`` environment variable, then ``reference``.
    Constructing a subclass directly bypasses resolution — the class
    already *is* the backend.  See :mod:`repro.sim.backends`.
    """

    #: Registry name of the backend this class implements.
    backend_name = "reference"
    #: Event-store class constructed by ``__init__``; backend subclasses
    #: override this alongside their dispatch loop.
    _queue_cls = EventQueue

    def __new__(cls, *, backend=None, **kwargs):
        if cls is Simulator:
            # Imported lazily: backends imports the backend modules,
            # which import this one.
            from repro.sim.backends import resolve_backend

            cls = resolve_backend(backend).simulator_cls
        return super().__new__(cls)

    def __init__(self, *, tiebreak_rng=None, obs=None, backend=None) -> None:
        # `backend` was consumed by __new__ (class dispatch); accepted
        # here so the two signatures match.
        del backend
        self._now_ns = 0
        self._queue = self._queue_cls(tiebreak_rng=tiebreak_rng)
        self._running = False
        # Observability: None unless an *enabled* repro.obs.Obs is
        # attached — the dispatch hot path only ever pays an identity
        # check (see the obs.overhead bench kernel).
        self._obs = None
        self._obs_track = None
        if obs is not None:
            self.attach_obs(obs)

    def attach_obs(self, obs, track: str | None = None) -> None:
        """Instrument dispatch with a :class:`repro.obs.Obs` bundle.

        ``track`` names the trace track dispatch spans land on; machines
        pass their own so per-machine timelines stay separate.  A
        disabled obs is ignored entirely.
        """
        from repro.obs import COUNT_BUCKETS, effective_obs

        obs = effective_obs(obs)
        if obs is None:
            return
        if track is None:
            track = obs.tracer.new_track("sim")
        self._obs = obs
        self._obs_track = track
        metrics = obs.metrics
        self._obs_dispatched = metrics.counter(
            "sim.events_dispatched",
            "Events dispatched by Simulator.run_until",
            "events",
            machine=track,
        )
        self._obs_depth = metrics.gauge(
            "sim.queue_depth",
            "Live events pending after the last run_until batch",
            "events",
            machine=track,
        )
        self._obs_compactions = metrics.counter(
            "sim.queue_compactions",
            "Event-queue lazy-cancel compaction passes",
            "passes",
            machine=track,
        )
        self._obs_batches = metrics.histogram(
            "sim.dispatch_batch",
            "Events dispatched per non-empty run_until batch",
            "events",
            buckets=COUNT_BUCKETS,
            machine=track,
        )
        self._obs_compact_seen = self._queue.compactions

    # --- clock ---------------------------------------------------------

    @property
    def now_ns(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now_ns

    # --- scheduling ------------------------------------------------------

    def schedule_at(self, time_ns: int, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute time ``time_ns`` (>= now)."""
        if type(time_ns) is not int:
            time_ns = _as_int_ns(time_ns, "time_ns")
        if time_ns < self._now_ns:
            raise SimulationError(
                f"cannot schedule at {time_ns} ns; clock is at {self._now_ns} ns"
            )
        return self._queue.push(time_ns, callback)

    def schedule_after(self, delay_ns: int, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` ``delay_ns`` nanoseconds from now."""
        if type(delay_ns) is not int:
            delay_ns = _as_int_ns(delay_ns, "delay_ns")
        if delay_ns < 0:
            raise SimulationError(f"negative delay {delay_ns}")
        return self._queue.push(self._now_ns + delay_ns, callback)

    def periodic(
        self,
        period_ns: int,
        callback: Callable[[], Any],
        *,
        phase_ns: int = 0,
    ) -> "PeriodicTask":
        """Create (and start) a periodic task firing every ``period_ns``.

        The first firing happens at ``now + phase_ns + period_ns`` — i.e.
        ``phase_ns`` offsets the task's slot grid, which the SMU model uses
        to desynchronize per-die update intervals.
        """
        return PeriodicTask(self, period_ns, callback, phase_ns=phase_ns)

    # --- execution -------------------------------------------------------

    def run_until(self, time_ns: int) -> None:
        """Execute all events up to and including ``time_ns``; set clock there.

        Events scheduled exactly at ``time_ns`` do fire.  The clock always
        ends at ``time_ns`` even if the queue drains earlier, so periodic
        samplers and experiments can rely on wall-time alignment.
        """
        time_ns = _as_int_ns(time_ns, "time_ns")
        if time_ns < self._now_ns:
            raise SimulationError(
                f"cannot run backwards to {time_ns} ns from {self._now_ns} ns"
            )
        if self._running:
            raise SimulationError("run_until called re-entrantly from a callback")
        self._running = True
        try:
            # Hot loop: EventQueue.pop_due inlined over the raw heap —
            # the dispatch rate here bounds every timing experiment (see
            # repro.bench's sim.dispatch kernel).  Safe to hold `heap`
            # across callbacks: the queue only ever mutates that list in
            # place (push appends, compaction slice-assigns).
            queue = self._queue
            heap = queue._heap
            if self._obs is None:
                while heap:
                    head = heap[0]
                    event = head[2]
                    if event.cancelled:
                        heappop(heap)
                        continue
                    if head[0] > time_ns:
                        break
                    heappop(heap)
                    queue._live -= 1
                    event._queue = None
                    self._now_ns = head[0]
                    event.callback()
            else:
                self._run_instrumented(queue, heap, time_ns)
            self._now_ns = time_ns
        finally:
            self._running = False

    def _run_instrumented(self, queue: EventQueue, heap: list, time_ns: int) -> None:
        """The run_until hot loop with obs instrumentation.

        Kept as a duplicate of the disabled loop (not a merged loop with
        per-event branches) so the disabled path stays within the <= 2 %
        overhead budget measured by the ``obs.overhead`` kernel.
        """
        tracer = self._obs.tracer
        t0_wall_ns = tracer.now_ns()
        t0_sim_ns = self._now_ns
        dispatched = 0
        try:
            while heap:
                head = heap[0]
                event = head[2]
                if event.cancelled:
                    heappop(heap)
                    continue
                if head[0] > time_ns:
                    break
                heappop(heap)
                queue._live -= 1
                event._queue = None
                self._now_ns = head[0]
                event.callback()
                dispatched += 1
        finally:
            if dispatched:
                self._obs_dispatched.inc(dispatched)
                self._obs_batches.observe(dispatched)
                tracer.complete(
                    "sim.dispatch",
                    cat="sim",
                    track=self._obs_track,
                    t0_wall_ns=t0_wall_ns,
                    sim_t0_ns=t0_sim_ns,
                    sim_t1_ns=self._now_ns,
                    events=dispatched,
                )
            self._obs_depth.set(queue._live)
            compactions = queue.compactions
            if compactions != self._obs_compact_seen:
                self._obs_compactions.inc(compactions - self._obs_compact_seen)
                self._obs_compact_seen = compactions

    def run_for(self, duration_ns: int) -> None:
        """Advance the clock by ``duration_ns``, executing due events."""
        self.run_until(self._now_ns + duration_ns)

    def step(self) -> bool:
        """Execute exactly one event. Returns False if the queue is empty."""
        if self._running:
            raise SimulationError("step called re-entrantly from a callback")
        next_time = self._queue.peek_time()
        if next_time is None:
            return False
        event = self._queue.pop()
        self._now_ns = event.time_ns
        self._running = True
        try:
            event.callback()
        finally:
            self._running = False
        return True

    @property
    def pending_events(self) -> int:
        """Number of non-cancelled events in the queue (O(1))."""
        return len(self._queue)

    @property
    def resident_events(self) -> int:
        """Heap entries resident in the queue, including stale cancelled
        ones awaiting lazy deletion or compaction (see
        :class:`repro.sim.events.EventQueue`)."""
        return self._queue.resident


class PeriodicTask:
    """A self-rescheduling periodic callback.

    Cancellation is immediate: after :meth:`cancel` the callback never
    fires again, even if an occurrence was already queued.
    """

    def __init__(
        self,
        sim: Simulator,
        period_ns: int,
        callback: Callable[[], Any],
        *,
        phase_ns: int = 0,
    ) -> None:
        period_ns = _as_int_ns(period_ns, "period_ns")
        if period_ns <= 0:
            raise SimulationError(f"period must be positive, got {period_ns}")
        self._sim = sim
        self.period_ns = period_ns
        self._callback = callback
        self._cancelled = False
        self._event: Event | None = None
        self._schedule_next(first_delay_ns=phase_ns + period_ns)

    def _schedule_next(self, *, first_delay_ns: int | None = None) -> None:
        delay = self.period_ns if first_delay_ns is None else first_delay_ns
        self._event = self._sim.schedule_after(delay, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._callback()
        if not self._cancelled:
            self._schedule_next()

    def cancel(self) -> None:
        """Stop the task permanently."""
        self._cancelled = True
        if self._event is not None:
            self._event.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def next_fire_ns(self) -> int | None:
        """Absolute time of the next scheduled firing (None if cancelled)."""
        if self._cancelled or self._event is None or self._event.cancelled:
            return None
        return self._event.time_ns
