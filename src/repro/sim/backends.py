"""Pluggable simulation backends.

A backend is a *pair* of implementations — a dispatch engine
(:class:`~repro.sim.engine.Simulator` subclass) and a power-model class
— that must be observably indistinguishable from the reference pair:
same fire order, same state trajectories, bit-identical power numbers.
The cross-check harness (:mod:`repro.sim.crosscheck`) and the
property-based differential suite enforce that promise; docs/backends.md
states it precisely.

Selection precedence, resolved at construction time:

1. an explicit ``backend=`` argument (:class:`~repro.machine.Machine`,
   :class:`~repro.sim.engine.Simulator`,
   :class:`~repro.core.experiment.ExperimentConfig`, ``--backend`` on
   the CLI);
2. the ``REPRO_SIM_BACKEND`` environment variable (how CI runs the whole
   tier-1 suite under the batched engine);
3. the ``reference`` backend.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Environment variable consulted when no explicit backend is given.
ENV_VAR = "REPRO_SIM_BACKEND"
DEFAULT_BACKEND = "reference"


@dataclass(frozen=True)
class SimBackend:
    """A named simulation backend: dispatch engine + power model."""

    name: str
    description: str
    simulator_cls: type
    power_model_cls: type

    def create_simulator(self, *, tiebreak_rng=None, obs=None):
        """Build this backend's simulator (explicitly, ignoring the env var)."""
        # backend=name pins resolution: constructing the base Simulator
        # class without it would re-resolve through REPRO_SIM_BACKEND.
        return self.simulator_cls(
            tiebreak_rng=tiebreak_rng, obs=obs, backend=self.name
        )

    def create_power_model(self, calibration):
        """Build this backend's power model for ``calibration``."""
        return self.power_model_cls(calibration)


_BACKENDS: dict[str, SimBackend] = {}


def register_backend(backend: SimBackend) -> None:
    """Add a backend to the registry (name must be unused)."""
    if backend.name in _BACKENDS:
        raise ConfigurationError(
            f"simulation backend {backend.name!r} is already registered"
        )
    _BACKENDS[backend.name] = backend


def available_backends() -> tuple[str, ...]:
    """Registered backend names, registration order."""
    return tuple(_BACKENDS)


def resolve_backend(backend: str | SimBackend | None = None) -> SimBackend:
    """Resolve a backend selection to a :class:`SimBackend`.

    ``None`` consults ``REPRO_SIM_BACKEND``, then falls back to
    ``reference``; an unknown name raises
    :class:`~repro.errors.ConfigurationError`.
    """
    if isinstance(backend, SimBackend):
        return backend
    if backend is None:
        backend = os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    try:
        return _BACKENDS[backend]
    except KeyError:
        raise ConfigurationError(
            f"unknown simulation backend {backend!r}; "
            f"available: {', '.join(sorted(_BACKENDS))}"
        ) from None


def _register_builtins() -> None:
    # Deferred imports: the backend modules import repro.sim.engine,
    # which resolves backends lazily inside Simulator.__new__.
    from repro.power.model import PowerModel
    from repro.power.vector import VectorizedPowerModel
    from repro.sim.batched import BatchedSimulator
    from repro.sim.engine import Simulator

    register_backend(
        SimBackend(
            name="reference",
            description=(
                "Binary-heap dispatch, scalar power model; the semantics "
                "every other backend is checked against"
            ),
            simulator_cls=Simulator,
            power_model_cls=PowerModel,
        )
    )
    register_backend(
        SimBackend(
            name="batched",
            description=(
                "Sorted-run batched dispatch (same-timestamp runs drain "
                "without re-entering the scheduler) and numpy-vectorized "
                "power breakdown; bit-identical to reference"
            ),
            simulator_cls=BatchedSimulator,
            power_model_cls=VectorizedPowerModel,
        )
    )


_register_builtins()
