"""Discrete-event simulation substrate.

The engine is intentionally small: an integer-nanosecond clock, a binary
heap of events, and periodic tasks.  Components of the machine model
(SMUs, instruments, the OS tick) schedule callbacks on a shared
:class:`~repro.sim.engine.Simulator`; experiments advance the clock with
:meth:`~repro.sim.engine.Simulator.run_until` /
:meth:`~repro.sim.engine.Simulator.run_for`.
"""

from repro.sim.engine import Simulator, PeriodicTask
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RngFactory

__all__ = ["Simulator", "PeriodicTask", "Event", "EventQueue", "RngFactory"]
