"""Discrete-event simulation substrate.

The engine is intentionally small: an integer-nanosecond clock, a binary
heap of events, and periodic tasks.  Components of the machine model
(SMUs, instruments, the OS tick) schedule callbacks on a shared
:class:`~repro.sim.engine.Simulator`; experiments advance the clock with
:meth:`~repro.sim.engine.Simulator.run_until` /
:meth:`~repro.sim.engine.Simulator.run_for`.

Dispatch is pluggable (:mod:`repro.sim.backends`): the ``reference``
backend is the heap engine above; the ``batched`` backend
(:mod:`repro.sim.batched`) drains sorted runs of events without
re-entering the scheduler per event, with equivalence enforced by the
differential cross-check harness (:mod:`repro.sim.crosscheck`).
"""

from repro.sim.backends import (
    SimBackend,
    available_backends,
    register_backend,
    resolve_backend,
)
from repro.sim.batched import BatchedEventQueue, BatchedSimulator
from repro.sim.engine import Simulator, PeriodicTask
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RngFactory

__all__ = [
    "Simulator",
    "PeriodicTask",
    "Event",
    "EventQueue",
    "RngFactory",
    "SimBackend",
    "BatchedSimulator",
    "BatchedEventQueue",
    "available_backends",
    "register_backend",
    "resolve_backend",
]
