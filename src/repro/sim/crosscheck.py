"""Differential cross-check harness between simulation backends.

The backend equivalence promise (docs/backends.md) is enforced here: a
*scenario* — a serializable program of scheduling/cancel/run operations,
either over a bare simulator or over a full machine — runs once per
backend, full state is snapshotted at every sync point, and the first
differing sync point is distilled into a structured
:class:`DivergenceReport` (sync time, first diverging dispatched event,
field path, both values).  Comparison is exact: integer clocks, event
``(time_ns, seq)`` pairs, and bit-identical floats — there is no
tolerance to hide behind.

Three consumers:

* the property-based differential suite
  (``tests/property/test_prop_backends.py``) shrinks failing scenarios
  with Hypothesis and saves them under ``tests/fixtures/crosscheck/``;
* saved fixtures replay as plain regression tests;
* ``python -m repro.sim.crosscheck`` runs a seeded scenario sweep (the
  CI smoke job) and writes the divergence report as a JSON artifact on
  failure.

Scenario specs are plain JSON dicts — ``{"kind": "engine"|"machine",
"seed": ..., "ops": [...]}`` — so a shrunk Hypothesis failure, a saved
fixture, and a CLI-generated scenario are the same object.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.sim.backends import resolve_backend
from repro.sim.rng import RngFactory
from repro.units import ms

#: Horizon appended after the last explicit sync so late events are
#: always observed (ns).
FINAL_SYNC_NS = 50_000

#: Schema family of the divergence-report artifact CI uploads.
REPORT_SCHEMA_ID = "repro.sim/crosscheck-report"
REPORT_SCHEMA_VERSION = 1

#: Workload palette for machine scenarios (names in repro.workloads).
WORKLOAD_NAMES = ("PAUSE_LOOP", "SPIN", "MEMORY_READ", "STREAM_TRIAD", "FIRESTARTER")


# ---------------------------------------------------------------------------
# state snapshots
# ---------------------------------------------------------------------------


def _norm_seq(seq: Any) -> Any:
    """Shuffle-mode seqs are tuples; JSON-normalize to lists."""
    return list(seq) if isinstance(seq, tuple) else seq


def queue_live_snapshot(sim) -> list[list]:
    """Live ``[time_ns, seq]`` pairs of a simulator's queue, fire order.

    Only *live* entries compare: the backends intentionally differ in
    when stale cancelled entries are physically dropped (reference
    compacts the heap in place, batched filters at the next merge), so
    ``resident`` is an implementation detail, not semantics.
    """
    queue = sim._queue
    entries = []
    if hasattr(queue, "_sorted"):
        # Batched store: sorted run + step-path backlog + append buffer.
        for event in queue._sorted[queue._idx : -1]:
            if not event.cancelled:
                entries.append((event.time_ns, event.seq))
        for time_ns, seq, event in queue._backlog:
            if not event.cancelled:
                entries.append((time_ns, seq))
        for event in queue._pending:
            if not event.cancelled:
                entries.append((event.time_ns, event.seq))
    else:
        for time_ns, seq, event in queue._heap:
            if not event.cancelled:
                entries.append((time_ns, seq))
    entries.sort()
    return [[time_ns, _norm_seq(seq)] for time_ns, seq in entries]


def machine_snapshot(machine) -> dict[str, Any]:
    """Full observable machine state at a sync point.

    Covers the clock, the live event queue, every per-thread and
    per-core register the experiments read, the exact power breakdown,
    and the raw RAPL energy counters.  All floats compare exactly.
    """
    from dataclasses import fields as dc_fields

    topo = machine.topology
    breakdown = machine.power_model.breakdown(machine, machine.thermal_state.temps_c)
    return {
        "now_ns": machine.sim.now_ns,
        "state_version": machine.state_version,
        "pending_events": machine.sim.pending_events,
        "queue": queue_live_snapshot(machine.sim),
        "temps_c": list(machine.thermal_state.temps_c),
        "threads": [
            {
                "cpu": thread.cpu_id,
                "online": thread.online,
                "cstate": thread.effective_cstate,
                "active": thread.is_active,
                "aperf": thread.aperf_cycles,
                "mperf": thread.mperf_cycles,
                "instructions": thread.instructions,
            }
            for thread in topo.threads()
        ],
        "cores": [{"freq_hz": core.applied_freq_hz} for core in topo.cores()],
        "power": {
            f.name: getattr(breakdown, f.name) for f in dc_fields(breakdown)
        },
        "rapl": {
            "pkg_raw": [
                machine.rapl_msrs.read_pkg_raw(i)
                for i in range(len(topo.packages))
            ],
            "core_raw": [
                machine.rapl_msrs.read_core_raw(i) for i in range(topo.n_cores)
            ],
            "last_update_ns": machine.rapl_msrs.last_update_ns,
        },
    }


# ---------------------------------------------------------------------------
# divergence reporting
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Divergence:
    """One differing field between the two backend runs."""

    path: str
    reference: Any
    candidate: Any

    def as_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "reference": self.reference,
            "candidate": self.candidate,
        }


def diff_state(reference: Any, candidate: Any, path: str = "") -> list[Divergence]:
    """Recursive exact comparison; returns every differing leaf path."""
    if isinstance(reference, dict) and isinstance(candidate, dict):
        out: list[Divergence] = []
        for key in sorted(reference.keys() | candidate.keys(), key=str):
            sub = f"{path}.{key}" if path else str(key)
            if key not in reference or key not in candidate:
                out.append(
                    Divergence(
                        sub,
                        reference.get(key, "<absent>"),
                        candidate.get(key, "<absent>"),
                    )
                )
            else:
                out.extend(diff_state(reference[key], candidate[key], sub))
        return out
    if isinstance(reference, (list, tuple)) and isinstance(candidate, (list, tuple)):
        out = []
        if len(reference) != len(candidate):
            out.append(
                Divergence(f"{path}.<len>", len(reference), len(candidate))
            )
        for i, (a, b) in enumerate(zip(reference, candidate)):
            out.extend(diff_state(a, b, f"{path}[{i}]"))
        return out
    if reference != candidate or type(reference) is not type(candidate):
        return [Divergence(path or "<root>", reference, candidate)]
    return []


@dataclass
class DivergenceReport:
    """First point where two backend runs of one scenario disagree."""

    scenario: dict[str, Any]
    backends: list[str]
    sync_index: int
    sync_time_ns: int
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def first(self) -> Divergence:
        return self.divergences[0]

    def first_event(self) -> Divergence | None:
        """The first diverging dispatched event, if dispatch order differs.

        Engine snapshots log fired events as ``[time_ns, tag, seq]``, so
        a dispatch-order divergence surfaces under a ``fired[...]`` path.
        """
        for divergence in self.divergences:
            if ".fired[" in divergence.path or divergence.path.startswith("fired["):
                return divergence
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA_ID,
            "schema_version": REPORT_SCHEMA_VERSION,
            "scenario": self.scenario,
            "backends": list(self.backends),
            "sync_index": self.sync_index,
            "sync_time_ns": self.sync_time_ns,
            "divergences": [d.as_dict() for d in self.divergences],
        }

    def render(self, limit: int = 10) -> str:
        lines = [
            f"backend divergence: {self.backends[0]} vs {self.backends[1]}",
            f"  scenario: kind={self.scenario.get('kind')} "
            f"seed={self.scenario.get('seed')} "
            f"ops={len(self.scenario.get('ops', []))}",
            f"  first diverging sync point: #{self.sync_index} "
            f"at t={self.sync_time_ns} ns "
            f"({len(self.divergences)} differing field(s))",
        ]
        event = self.first_event()
        if event is not None:
            lines.append(
                f"  first diverging event: {event.path}: "
                f"{event.reference!r} != {event.candidate!r}"
            )
        for divergence in self.divergences[:limit]:
            lines.append(
                f"    {divergence.path}: {divergence.reference!r} "
                f"!= {divergence.candidate!r}"
            )
        if len(self.divergences) > limit:
            lines.append(f"    ... {len(self.divergences) - limit} more")
        return "\n".join(lines)


def validate_report_document(doc: dict[str, Any]) -> list[str]:
    """Schema errors in a persisted divergence-report document."""
    errors: list[str] = []
    if doc.get("schema") != REPORT_SCHEMA_ID:
        errors.append(
            f"schema must be {REPORT_SCHEMA_ID!r}, got {doc.get('schema')!r}"
        )
    if doc.get("schema_version") != REPORT_SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {REPORT_SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}"
        )
    if not isinstance(doc.get("scenario"), dict):
        errors.append("scenario must be an object")
    backends = doc.get("backends")
    if not (
        isinstance(backends, list)
        and len(backends) == 2
        and all(isinstance(b, str) for b in backends)
    ):
        errors.append("backends must be a list of two backend names")
    for key in ("sync_index", "sync_time_ns"):
        if not isinstance(doc.get(key), int):
            errors.append(f"{key} must be an integer")
    divergences = doc.get("divergences")
    if not (isinstance(divergences, list) and divergences):
        errors.append("divergences must be a non-empty list")
    else:
        for i, entry in enumerate(divergences):
            if not (isinstance(entry, dict) and isinstance(entry.get("path"), str)):
                errors.append(f"divergences[{i}] needs a string 'path'")
            elif not {"reference", "candidate"} <= entry.keys():
                errors.append(
                    f"divergences[{i}] needs 'reference' and 'candidate'"
                )
    return errors


# ---------------------------------------------------------------------------
# engine scenarios
# ---------------------------------------------------------------------------


def generate_engine_scenario(
    seed: int, *, n_ops: int = 60, shuffle: bool = False
) -> dict[str, Any]:
    """A seeded random engine-op program (see :func:`run_scenario`).

    The op mix deliberately concentrates on ordering hazards: bursts of
    same-timestamp events, zero-period reschedule chains, zero-delay
    spawns from callbacks, and cancels executed both between and inside
    callbacks.
    """
    rng = RngFactory(seed).child("crosscheck/engine-ops")

    def draw(hi: int) -> int:
        return int(rng.integers(0, hi))

    ops: list[list[int | str]] = []
    for _ in range(n_ops):
        r = draw(100)
        if r < 22:
            ops.append(["after", draw(2_000)])
        elif r < 32:
            ops.append(["at", draw(2_500)])
        elif r < 48:
            ops.append(["burst", draw(1_000), 2 + draw(4)])
        elif r < 62:
            ops.append(["chain", draw(500), 2 + draw(6), draw(300)])
        elif r < 72:
            ops.append(["spawn", draw(800), draw(200)])
        elif r < 81:
            ops.append(["cancel", draw(64)])
        elif r < 89:
            ops.append(["cancel_in_cb", draw(700), draw(64)])
        else:
            ops.append(["sync", 1 + draw(3_000)])
    ops.append(["sync", 5_000])
    spec: dict[str, Any] = {"kind": "engine", "seed": int(seed), "ops": ops}
    if shuffle:
        spec["shuffle"] = True
    return spec


def _run_engine(spec: dict[str, Any], backend) -> list[dict[str, Any]]:
    backend = resolve_backend(backend)
    tiebreak = None
    if spec.get("shuffle"):
        tiebreak = RngFactory(int(spec.get("seed", 0))).child("crosscheck/shuffle")
    sim = backend.create_simulator(tiebreak_rng=tiebreak)

    live: list = []
    fired: list[list] = []
    tags = itertools.count()

    def scheduled_cb(tag: int, holder: list, body=None):
        def cb():
            fired.append([sim.now_ns, tag, _norm_seq(holder[0].seq)])
            if body is not None:
                body()

        return cb

    def sched_after(delay_ns: int, body=None):
        tag = next(tags)
        holder: list = []
        event = sim.schedule_after(delay_ns, scheduled_cb(tag, holder, body))
        holder.append(event)
        live.append(event)
        return event

    def sched_at(offset_ns: int):
        tag = next(tags)
        holder: list = []
        event = sim.schedule_at(
            sim.now_ns + offset_ns, scheduled_cb(tag, holder)
        )
        holder.append(event)
        live.append(event)
        return event

    def make_chain(remaining: int, period_ns: int):
        def body():
            if remaining > 1:
                sched_after(period_ns, make_chain(remaining - 1, period_ns))

        return body

    def snapshot() -> dict[str, Any]:
        snap = {
            "now_ns": sim.now_ns,
            "pending": sim.pending_events,
            "fired": [list(entry) for entry in fired],
            "queue": queue_live_snapshot(sim),
        }
        fired.clear()
        return snap

    snapshots: list[dict[str, Any]] = []
    for op in spec["ops"]:
        kind = op[0]
        if kind == "after":
            sched_after(op[1])
        elif kind == "at":
            sched_at(op[1])
        elif kind == "burst":
            for _ in range(op[2]):
                sched_after(op[1])
        elif kind == "chain":
            sched_after(op[1], make_chain(op[2], op[3]))
        elif kind == "spawn":
            child_delay = op[2]
            sched_after(op[1], lambda child_delay=child_delay: sched_after(child_delay))
        elif kind == "cancel":
            if live:
                live.pop(op[1] % len(live)).cancel()
        elif kind == "cancel_in_cb":
            k = op[2]

            def cancel_body(k=k):
                if live:
                    live.pop(k % len(live)).cancel()

            sched_after(op[1], cancel_body)
        elif kind == "sync":
            sim.run_until(sim.now_ns + op[1])
            snapshots.append(snapshot())
        else:
            raise ConfigurationError(f"unknown engine scenario op {kind!r}")
    sim.run_until(sim.now_ns + FINAL_SYNC_NS)
    snapshots.append(snapshot())
    return snapshots


# ---------------------------------------------------------------------------
# machine scenarios
# ---------------------------------------------------------------------------


def generate_machine_scenario(seed: int, *, n_ops: int = 12) -> dict[str, Any]:
    """A seeded random machine-op program (frequencies, workloads,
    hotplug, measurements, event-driven windows)."""
    rng = RngFactory(seed).child("crosscheck/machine-ops")

    def draw(hi: int) -> int:
        return int(rng.integers(0, hi))

    ops: list[list[int | str]] = []
    for _ in range(n_ops):
        r = draw(100)
        if r < 15:
            ops.append(["freq_all", draw(3)])
        elif r < 28:
            ops.append(["freq", draw(64), draw(3)])
        elif r < 46:
            ops.append(["run", draw(len(WORKLOAD_NAMES)), 1 + draw(8)])
        elif r < 54:
            ops.append(["stop"])
        elif r < 62:
            ops.append(["offline", 1 + draw(63)])
        elif r < 68:
            ops.append(["online", 1 + draw(63)])
        elif r < 78:
            ops.append(["measure", 1 + draw(3)])
        elif r < 90:
            ops.append(["event_mode", 2 + draw(5), draw(3)])
        else:
            ops.append(["sync"])
    ops.append(["sync"])
    return {"kind": "machine", "seed": int(seed), "ops": ops}


def _run_machine(spec: dict[str, Any], backend) -> list[dict[str, Any]]:
    import repro.workloads as workloads
    from repro.machine import Machine

    backend = resolve_backend(backend)
    machine = Machine(
        "EPYC 7302",
        n_packages=1,
        seed=int(spec.get("seed", 0)),
        backend=backend.name,
    )
    snapshots: list[dict[str, Any]] = []
    try:
        freqs = machine.sku.available_freqs_hz
        cpus = machine.os.all_cpus()
        for op in spec["ops"]:
            kind = op[0]
            if kind == "freq_all":
                machine.os.set_all_frequencies(freqs[op[1] % len(freqs)])
            elif kind == "freq":
                machine.os.set_frequency(
                    cpus[op[1] % len(cpus)], freqs[op[2] % len(freqs)]
                )
            elif kind == "run":
                workload = getattr(
                    workloads, WORKLOAD_NAMES[op[1] % len(WORKLOAD_NAMES)]
                )
                online = [
                    c
                    for c in machine.os.first_thread_cpus()
                    if machine.topology.thread(c).online
                ]
                if online:
                    machine.os.run(workload, online[: 1 + op[2] % len(online)])
            elif kind == "stop":
                machine.os.stop()
            elif kind == "offline":
                cpu = cpus[op[1] % len(cpus)]
                # cpu0 stays online (Linux semantics); state-guarded so
                # the op is a no-op rather than an error when already off.
                if cpu != cpus[0] and machine.topology.thread(cpu).online:
                    machine.os.hotplug.set_offline(cpu)
            elif kind == "online":
                cpu = cpus[op[1] % len(cpus)]
                if not machine.topology.thread(cpu).online:
                    machine.os.hotplug.set_online(cpu)
            elif kind == "measure":
                machine.measure(0.05 * op[1])
            elif kind == "event_mode":
                machine.enable_event_mode(rapl_ticks=True)
                machine.os.set_all_frequencies(freqs[op[2] % len(freqs)])
                machine.sim.run_for(ms(op[1]))
                machine.disable_event_mode()
            elif kind == "sync":
                snapshots.append(machine_snapshot(machine))
            else:
                raise ConfigurationError(f"unknown machine scenario op {kind!r}")
        snapshots.append(machine_snapshot(machine))
    finally:
        machine.shutdown()
    return snapshots


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------


def run_scenario(spec: dict[str, Any], backend) -> list[dict[str, Any]]:
    """Execute one scenario on one backend; snapshots per sync point."""
    kind = spec.get("kind")
    if kind == "engine":
        return _run_engine(spec, backend)
    if kind == "machine":
        return _run_machine(spec, backend)
    raise ConfigurationError(f"unknown scenario kind {kind!r}")


@dataclass
class CrossCheckRunner:
    """Runs scenarios on two backends and reports the first divergence."""

    backends: tuple[str, str] = ("reference", "batched")

    def run(self, spec: dict[str, Any]) -> DivergenceReport | None:
        """None when the backends agree at every sync point."""
        ref_name, cand_name = self.backends
        ref_snaps = run_scenario(spec, ref_name)
        cand_snaps = run_scenario(spec, cand_name)
        if len(ref_snaps) != len(cand_snaps):
            # A backend that produced fewer sync points is itself a
            # divergence; zip would silently truncate the comparison.
            index = min(len(ref_snaps), len(cand_snaps))
            return DivergenceReport(
                scenario=spec,
                backends=[ref_name, cand_name],
                sync_index=index,
                sync_time_ns=-1,
                divergences=[
                    Divergence(
                        "<sync_count>", len(ref_snaps), len(cand_snaps)
                    )
                ],
            )
        for index, (ref_snap, cand_snap) in enumerate(zip(ref_snaps, cand_snaps)):
            divergences = diff_state(ref_snap, cand_snap)
            if divergences:
                return DivergenceReport(
                    scenario=spec,
                    backends=[ref_name, cand_name],
                    sync_index=index,
                    sync_time_ns=int(ref_snap.get("now_ns", -1)),
                    divergences=divergences,
                )
        return None


# ---------------------------------------------------------------------------
# fixtures (shrunk property-suite failures, replayed as regressions)
# ---------------------------------------------------------------------------


def fixture_name(spec: dict[str, Any]) -> str:
    import hashlib

    blob = json.dumps(spec, sort_keys=True).encode()
    return f"{spec.get('kind', 'scenario')}_{hashlib.sha256(blob).hexdigest()[:12]}.json"


def save_fixture(spec: dict[str, Any], directory: str | Path) -> Path:
    """Persist a scenario spec; name is content-addressed (idempotent)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / fixture_name(spec)
    path.write_text(json.dumps({"spec": spec}, indent=2, sort_keys=True) + "\n")
    return path


def load_fixtures(directory: str | Path) -> list[tuple[str, dict[str, Any]]]:
    """All saved ``(name, spec)`` pairs under ``directory``, sorted."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    out = []
    for path in sorted(directory.glob("*.json")):
        out.append((path.name, json.loads(path.read_text())["spec"]))
    return out


# ---------------------------------------------------------------------------
# CLI (CI smoke job)
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.crosscheck",
        description="Differential cross-check of simulation backends: run "
        "seeded random scenarios on two backends and fail on the first "
        "state divergence (see docs/backends.md).",
    )
    parser.add_argument(
        "--scenarios", type=int, default=50, metavar="N",
        help="number of generated scenarios (default 50)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base scenario seed")
    parser.add_argument(
        "--kind", choices=["engine", "machine", "both"], default="both",
        help="scenario families to generate (default both)",
    )
    parser.add_argument(
        "--machine-every", type=int, default=10, metavar="K",
        help="with --kind both: every Kth scenario is a machine scenario "
        "(default 10; engine scenarios are far cheaper)",
    )
    parser.add_argument(
        "--shuffle-every", type=int, default=4, metavar="K",
        help="every Kth engine scenario runs in event-order shuffle mode "
        "(default 4; 0 disables)",
    )
    parser.add_argument(
        "--backends", nargs=2, default=["reference", "batched"],
        metavar=("REF", "CAND"), help="backend pair to compare",
    )
    parser.add_argument(
        "--fixtures", metavar="DIR",
        help="also replay every saved fixture spec in DIR",
    )
    parser.add_argument(
        "--report", metavar="PATH",
        help="on divergence: write the structured report JSON to PATH",
    )
    args = parser.parse_args(argv)

    runner = CrossCheckRunner(backends=(args.backends[0], args.backends[1]))
    specs: list[tuple[str, dict[str, Any]]] = []
    if args.fixtures:
        specs.extend(load_fixtures(args.fixtures))
    for i in range(args.scenarios):
        seed = args.seed + i
        machine_turn = args.kind == "machine" or (
            args.kind == "both"
            and args.machine_every > 0
            and i % args.machine_every == args.machine_every - 1
        )
        if machine_turn:
            specs.append((f"machine/seed{seed}", generate_machine_scenario(seed)))
        else:
            shuffle = (
                args.shuffle_every > 0
                and i % args.shuffle_every == args.shuffle_every - 1
            )
            specs.append(
                (
                    f"engine/seed{seed}" + ("/shuffle" if shuffle else ""),
                    generate_engine_scenario(seed, shuffle=shuffle),
                )
            )

    for name, spec in specs:
        report = runner.run(spec)
        if report is not None:
            print(f"DIVERGENCE in scenario {name}:", file=sys.stderr)
            print(report.render(), file=sys.stderr)
            if args.report:
                Path(args.report).write_text(
                    json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
                )
                print(f"report written to {args.report}", file=sys.stderr)
            return 1
    print(
        f"crosscheck OK: {len(specs)} scenario(s), "
        f"{args.backends[0]} vs {args.backends[1]}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
