"""Reproducible random-number fan-out.

Every stochastic component of the machine (instrument noise, wake-latency
jitter, OS interrupt timing, ...) draws from its *own* child generator,
derived from a single experiment seed and a stable component name.  This
gives two properties the experiments rely on:

* **Reproducibility** — the same seed produces bit-identical runs.
* **Independence under refactoring** — adding a new noisy component does
  not shift the streams seen by existing components, because each stream
  is keyed by name rather than by draw order.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngFactory:
    """Derives named, independent :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def child(self, name: str) -> np.random.Generator:
        """Return a generator keyed by ``(seed, name)``.

        Repeated calls with the same name return *fresh* generators with
        identical streams — callers should hold on to the generator if
        they need a continuing stream.
        """
        digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
        # 4 x 64-bit words of entropy for SeedSequence
        words = [int.from_bytes(digest[i : i + 8], "little") for i in range(0, 32, 8)]
        return np.random.default_rng(np.random.SeedSequence(words))

    def spawn(self, name: str) -> "RngFactory":
        """Derive a sub-factory (e.g. one per experiment repetition)."""
        digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
        return RngFactory(int.from_bytes(digest[:8], "little"))
