"""Generator-based processes on top of the event simulator.

The machine model itself uses explicit callbacks (cheap, hot paths), but
sequential *scripts* — benchmark drivers, scenario walkthroughs — read
better as coroutines.  A process is a generator that yields:

* ``Timeout(delay_ns)`` — resume after a delay;
* ``WaitFor(predicate, poll_ns)`` — resume when the predicate holds
  (polled, like a real busy-wait probe);
* another :class:`Process` — resume when it terminates.

Example::

    def script(sim, machine):
        machine.os.set_frequency(0, ghz(2.5))
        yield Timeout(ms(2))
        assert machine.topology.thread(0).core.applied_freq_hz == ghz(2.5)

    Process(sim, script(sim, machine))
    sim.run_until(ms(10))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator

from repro.errors import SimulationError
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class Timeout:
    """Resume after ``delay_ns``."""

    delay_ns: int


@dataclass(frozen=True)
class WaitFor:
    """Resume once ``predicate()`` is true; polled every ``poll_ns``."""

    predicate: Callable[[], bool]
    poll_ns: int = 1_000
    timeout_ns: int | None = None


class ProcessTimeout(SimulationError):
    """A WaitFor condition did not come true in time."""


class Process:
    """Drives a generator through the simulator."""

    def __init__(self, sim: Simulator, generator: Generator) -> None:
        self.sim = sim
        self._gen = generator
        self.finished = False
        self.result = None
        self._waiters: list[Process] = []
        self._step(None)

    # --- internals ---------------------------------------------------------

    def _step(self, value) -> None:
        try:
            command = self._gen.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            for waiter in self._waiters:
                waiter._step(self.result)
            self._waiters.clear()
            return
        self._dispatch(command)

    def _dispatch(self, command) -> None:
        if isinstance(command, Timeout):
            self.sim.schedule_after(command.delay_ns, lambda: self._step(None))
        elif isinstance(command, WaitFor):
            deadline = (
                None
                if command.timeout_ns is None
                else self.sim.now_ns + command.timeout_ns
            )
            self._poll(command, deadline)
        elif isinstance(command, Process):
            if command.finished:
                self.sim.schedule_after(0, lambda: self._step(command.result))
            else:
                command._waiters.append(self)
        else:
            raise SimulationError(
                f"process yielded unsupported command {command!r}"
            )

    def _poll(self, command: WaitFor, deadline_ns: int | None) -> None:
        if command.predicate():
            self._step(None)
            return
        if deadline_ns is not None and self.sim.now_ns >= deadline_ns:
            try:
                self._gen.throw(
                    ProcessTimeout(f"condition not met within timeout")
                )
            except StopIteration as stop:
                self.finished = True
                self.result = stop.value
                for waiter in self._waiters:
                    waiter._step(self.result)
                self._waiters.clear()
            return
        self.sim.schedule_after(
            command.poll_ns, lambda: self._poll(command, deadline_ns)
        )
