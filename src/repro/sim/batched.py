"""The batched dispatch engine (the ``batched`` simulation backend).

:class:`BatchedSimulator` is a drop-in :class:`~repro.sim.engine.Simulator`
that replaces the binary heap with a *sorted-run* event store: a sorted
list consumed by index plus an unsorted append buffer for events
scheduled since the last merge.  ``run_until`` drains whole runs of due
events with no per-event heap sift — the dominant machine pattern
(fixed-period SMU slots, RAPL samplers, reschedule chains) appends in
nondecreasing time order, so most merges are a list swap that skips even
the sort.  The step path (peek/pop/pop_due) serves interleaved push/pop
traffic from a reference-ordered backlog heap instead of rebuilding the
run per pop (:meth:`BatchedEventQueue._settle`).  Equivalence with the
reference engine is a tested guarantee, not an aspiration: see
:mod:`repro.sim.crosscheck` and docs/backends.md.

Why the fire order is identical to the reference heap's ``(time_ns,
seq)`` order:

* every push appends to the pending buffer, so within the buffer,
  scheduling order equals ``seq`` order;
* at a merge, every event already in the sorted run was pushed before
  every pending event, so its ``seq`` is smaller; ``list.sort`` is
  stable, so sorting the concatenation by ``time_ns`` alone keeps
  same-timestamp events in ``seq`` order — inductively, the sorted run
  always holds ties in scheduling order, matching the heap;
* in shuffle mode (``tiebreak_rng``) the drawn ``seq`` tuples are *not*
  monotone in push order, so the merge sorts by ``(time_ns, seq)``
  explicitly — the same total order the reference heap applies.

Bookkeeping the dispatch loop defers (exact again at every merge and at
``run_until`` exit, i.e. whenever user code can observe the queue):
``_live`` and ``_idx``.  ``len(queue)`` therefore stays O(1) and exact
at sync points; nothing in the tree reads queue length from inside a
dispatch callback.
"""

from __future__ import annotations

import itertools
import operator
from heapq import heappop, heappush
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.engine import Simulator, _as_int_ns
from repro.sim.events import Event

_INF = float("inf")
_NEG_INF = float("-inf")
#: ``_pend_last`` sentinel meaning "pending buffer is not time-ordered".
_UNORDERED = _INF

_TIME_KEY = operator.attrgetter("time_ns")
_TIME_SEQ_KEY = operator.attrgetter("time_ns", "seq")


def _make_sentinel() -> Event:
    event = Event.__new__(Event)
    event.time_ns = _INF  # compares greater than any real int time
    event.seq = -1
    event.callback = None
    event.cancelled = False
    event._queue = None
    return event


#: Shared +inf terminator of every sorted run: the dispatch loop needs no
#: bounds check because this entry's time exceeds every horizon.
_SENTINEL = _make_sentinel()


class BatchedEventQueue:
    """Sorted-run event store: consumed prefix + sorted tail + append buffer.

    API-compatible with :class:`~repro.sim.events.EventQueue` (push /
    peek_time / pop / pop_due / len / resident / compactions / clear),
    with two relaxations documented in docs/backends.md:

    * ``len(queue)`` is exact at sync points (outside ``run_until``);
      inside a dispatch callback it may lag by the events fired since
      the last merge — nothing in the tree observes it there;
    * stale cancelled entries are physically dropped at the next merge
      after the compaction threshold trips (the reference compacts the
      heap immediately); the live count is exact either way.
    """

    #: Same threshold as the reference queue: below this resident count a
    #: compaction pass costs more than the lazy skips it saves.
    COMPACT_MIN_RESIDENT = 64

    __slots__ = (
        "_sorted",
        "_idx",
        "_pending",
        "_pending_min",
        "_pend_last",
        "_pend_append",
        "_backlog",
        "_head_in_backlog",
        "_counter",
        "_tiebreak_rng",
        "_sort_key",
        "_live",
        "_stale",
        "_stale_filter",
        "compactions",
    )

    def __init__(self, *, tiebreak_rng=None) -> None:
        self._sorted: list[Event] = [_SENTINEL]
        self._idx = 0
        self._pending: list[Event] = []
        self._pending_min: float | int = _INF
        self._pend_last: float | int = _NEG_INF
        self._pend_append = self._pending.append
        #: Step-path backlog: a ``(time_ns, seq, Event)`` heap absorbing
        #: the append buffer when interleaved push/pop traffic would
        #: otherwise force a run rebuild per pop (see :meth:`_settle`).
        #: Always folded back into the run before batched dispatch.
        self._backlog: list[tuple] = []
        self._head_in_backlog = False
        self._counter = itertools.count()
        self._tiebreak_rng = tiebreak_rng
        # Stable-sort + seq-monotonicity makes the time-only key exact in
        # stable mode (module docstring); shuffled seqs need the full key.
        self._sort_key = _TIME_KEY if tiebreak_rng is None else _TIME_SEQ_KEY
        self._live = 0
        self._stale = 0
        self._stale_filter = False
        #: Threshold-triggered stale-entry drops so far (obs parity with
        #: the reference queue's compaction counter).
        self.compactions = 0

    def __len__(self) -> int:
        return self._live + len(self._pending)

    def __bool__(self) -> bool:
        return self._live + len(self._pending) > 0

    @property
    def resident(self) -> int:
        """Entries currently held, including stale cancelled ones."""
        return (
            (len(self._sorted) - 1 - self._idx)
            + len(self._pending)
            + len(self._backlog)
        )

    def push(self, time_ns: int, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute time ``time_ns``.

        The general-purpose path (also the shuffle-mode path);
        :meth:`BatchedSimulator.schedule_after` inlines the stable-mode
        equivalent.
        """
        if time_ns < 0:
            raise SimulationError(f"cannot schedule at negative time {time_ns}")
        rng = self._tiebreak_rng
        seq: int | tuple[int, int] = (
            next(self._counter)
            if rng is None
            else (int(rng.integers(1 << 62)), next(self._counter))
        )
        event = Event(time_ns, seq, callback, self)
        self._pend_append(event)
        # Strict > on a time tie in shuffle mode: tied pushes carry random
        # seqs, so push order is not (time, seq) order and the merge must
        # re-sort.  Stable mode keeps >= — the monotone counter orders ties.
        if time_ns > self._pend_last or (time_ns == self._pend_last and rng is None):
            self._pend_last = time_ns
        else:
            self._pend_last = _UNORDERED
        if time_ns < self._pending_min:
            self._pending_min = time_ns
        return event

    # --- step-path operations (cold relative to run_until) -------------

    def _settle(self) -> Event:
        """Find the earliest live event without rebuilding the run.

        Returns the earliest live event (or the sentinel) and records
        whether it lives in the sorted run or the backlog heap
        (``_head_in_backlog``), so pop can consume from the right
        structure.  Backs the peek/pop/pop_due trio; the dispatch loop
        never calls this.

        The append buffer stays untouched while the run (or backlog)
        head is *decisive* — earlier than every buffered push, or tied
        in stable mode, where already-settled seqs are always smaller
        than buffered ones.  Otherwise the buffer drains into the
        backlog heap: a heap absorbs the uniform interleaved push/pop
        traffic of the ``event_queue.mixed`` bench shape in O(log n)
        per op, where insorting into (or re-sorting) a large run would
        be O(resident) per pop.  An armed stale-filter always merges
        first, so threshold compaction stays prompt on the step path.
        """
        if self._stale_filter:
            self._merge()
        srt = self._sorted
        idx = self._idx
        event = srt[idx]
        while event.cancelled:
            self._stale -= 1
            idx += 1
            event = srt[idx]
        self._idx = idx
        self._head_in_backlog = False
        backlog = self._backlog
        if self._pending:
            pmin = self._pending_min
            shuffle = self._tiebreak_rng is not None
            # A buffered push can only win against the run/backlog heads
            # if it is strictly earlier — or tied in shuffle mode, where
            # its random seq may sort first.
            need = pmin < event.time_ns or (pmin == event.time_ns and shuffle)
            if not need and backlog:
                head_time = backlog[0][0]
                need = pmin < head_time or (pmin == head_time and shuffle)
            if need:
                self._drain_backlog()
        if backlog:
            entry = backlog[0]
            head = entry[2]
            while head.cancelled:
                heappop(backlog)
                self._stale -= 1
                if not backlog:
                    return event
                entry = backlog[0]
                head = entry[2]
            t = event.time_ns
            if entry[0] < t or (entry[0] == t and entry[1] < event.seq):
                self._head_in_backlog = True
                return head
        return event

    def _drain_backlog(self) -> None:  # lint: cold (amortized step-path absorb)
        """Fold the append buffer into the backlog heap.

        Entries are ``(time_ns, seq, Event)`` — the reference queue's
        heap ordering, so backlog pops reproduce its ``(time, seq)``
        order exactly in both tie-break modes.  Cancelled buffered
        events enter stale and are skipped lazily, mirroring the merge
        path's accounting.
        """
        backlog = self._backlog
        pending = self._pending
        for event in pending:
            heappush(backlog, (event.time_ns, event.seq, event))
        self._live += len(pending)
        pending.clear()
        self._pending_min = _INF
        self._pend_last = _NEG_INF

    def peek_time(self) -> int | None:
        """Fire time of the earliest pending event, or None if empty."""
        event = self._settle()
        if event is _SENTINEL:
            return None
        return event.time_ns

    def pop(self) -> Event:
        """Remove and return the earliest pending event."""
        event = self._settle()
        if event is _SENTINEL:
            raise SimulationError("pop from empty event queue")
        if self._head_in_backlog:
            heappop(self._backlog)
        else:
            self._idx += 1
        self._live -= 1
        event._queue = None
        return event

    def pop_due(self, limit_ns: int) -> Event | None:
        """Pop the earliest pending event with ``time_ns <= limit_ns``."""
        event = self._settle()
        if event is _SENTINEL or event.time_ns > limit_ns:
            return None
        if self._head_in_backlog:
            heappop(self._backlog)
        else:
            self._idx += 1
        self._live -= 1
        event._queue = None
        return event

    # --- cancellation / compaction --------------------------------------

    def _note_cancel(self) -> None:
        """Bookkeeping for an in-queue cancel (called by :meth:`Event.cancel`)."""
        self._live -= 1
        self._stale += 1
        if not self._stale_filter:
            resident = (
                (len(self._sorted) - 1 - self._idx)
                + len(self._pending)
                + len(self._backlog)
            )
            if (
                resident >= self.COMPACT_MIN_RESIDENT
                and resident - self._live > self._live
            ):
                # Deferred compaction: the dispatch loop may hold the
                # sorted run by reference, so stale entries are dropped
                # at the next merge instead of in place here.
                self._stale_filter = True
                self.compactions += 1

    def _drop_stale(self, entries: list[Event]) -> None:
        before = len(entries)
        entries[:] = [event for event in entries if not event.cancelled]
        self._stale -= before - len(entries)
        self._stale_filter = False

    def _merge(self) -> list[Event]:  # lint: cold (amortized pending re-sort)
        """Fold the pending buffer into a fresh sorted run.

        Called from the dispatch loop between runs and from
        :meth:`_settle`; also settles the deferred ``_live`` / stale
        accounting.  When the consumed prefix covers the whole previous
        run, the pending buffer *becomes* the new run (list swap), and
        if its pushes arrived in nondecreasing time order — the dominant
        pattern: fixed-period reschedule chains — the sort is skipped
        entirely.
        """
        srt = self._sorted
        idx = self._idx
        pending = self._pending
        backlog = self._backlog
        # Cancelled pending entries were already subtracted by
        # _note_cancel, so adding the raw buffer length is exact.
        self._live += len(pending)
        rest = srt[idx:-1]
        if backlog:
            # Heap-array order is arbitrary, so the stable time-only key
            # is not enough here; (time, seq) reproduces push order in
            # stable mode and the drawn order in shuffle mode.
            rest.extend(entry[2] for entry in backlog)
            backlog.clear()
            rest.extend(pending)
            if self._stale_filter:
                self._drop_stale(rest)
            rest.sort(key=_TIME_SEQ_KEY)
        elif rest:
            rest.extend(pending)
            if self._stale_filter:
                self._drop_stale(rest)
            rest.sort(key=self._sort_key)
        else:
            # The pending buffer's *contents* become the new run, but the
            # list object itself stays: the fast schedule path holds a
            # bound reference to its append (see _bind_fast_schedule).
            rest = pending[:]
            if self._stale_filter:
                self._drop_stale(rest)
            if self._pend_last is _UNORDERED:
                rest.sort(key=self._sort_key)
        pending.clear()
        rest.append(_SENTINEL)
        self._sorted = rest
        self._idx = 0
        self._pending_min = _INF
        self._pend_last = _NEG_INF
        return rest

    def clear(self) -> None:
        """Drop all pending events."""
        for event in self._sorted[self._idx : -1]:
            event._queue = None
        for event in self._pending:
            event._queue = None
        for entry in self._backlog:
            entry[2]._queue = None
        self._sorted = [_SENTINEL]
        self._idx = 0
        self._pending.clear()
        self._backlog.clear()
        self._head_in_backlog = False
        self._pending_min = _INF
        self._pend_last = _NEG_INF
        self._live = 0
        self._stale = 0
        self._stale_filter = False


class BatchedSimulator(Simulator):
    """Batched-dispatch :class:`~repro.sim.engine.Simulator`.

    Construct directly, or via ``Simulator(backend="batched")`` /
    ``REPRO_SIM_BACKEND=batched`` (see :mod:`repro.sim.backends`).
    """

    backend_name = "batched"
    _queue_cls = BatchedEventQueue

    def __init__(self, *, tiebreak_rng=None, obs=None, backend=None) -> None:
        super().__init__(tiebreak_rng=tiebreak_rng, obs=obs, backend=backend)
        self._bind_fast_schedule()

    def _bind_fast_schedule(self) -> None:
        """Bind a specialized stable-mode ``schedule_after`` on the instance.

        Reschedule chains call ``schedule_after`` once per dispatched
        event, so its interpreter overhead is dispatch throughput.  The
        bound closure replaces the method's per-call attribute walks
        (queue, counter, append) with cell loads resolved once here, and
        decides the shuffle-mode branch at construction time —
        ``tiebreak_rng`` is fixed for the simulator's lifetime.  Shuffle
        mode keeps the method (random seqs go through ``queue.push``).
        The captures stay valid because the queue never rebinds
        ``_pending`` or ``_counter`` (see :meth:`BatchedEventQueue._merge`).
        """
        queue = self._queue
        if queue._tiebreak_rng is not None:
            return
        sim = self
        pend_append = queue._pending.append
        counter_next = queue._counter.__next__

        def schedule_after(
            delay_ns: int,
            callback: Callable[[], Any],
            _new=Event.__new__,
            _Event=Event,
        ) -> Event:
            if type(delay_ns) is not int:
                delay_ns = _as_int_ns(delay_ns, "delay_ns")
            if delay_ns < 0:
                raise SimulationError(f"negative delay {delay_ns}")
            time_ns = sim._now_ns + delay_ns
            event = _new(_Event)
            event.time_ns = time_ns
            event.seq = counter_next()
            event.callback = callback
            event.cancelled = False
            event._queue = queue
            pend_append(event)
            if time_ns >= queue._pend_last:
                queue._pend_last = time_ns
            else:
                queue._pend_last = _UNORDERED
            if time_ns < queue._pending_min:
                queue._pending_min = time_ns
            return event

        self.schedule_after = schedule_after

    # --- scheduling ------------------------------------------------------

    def schedule_at(self, time_ns: int, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute time ``time_ns`` (>= now)."""
        if type(time_ns) is not int:
            time_ns = _as_int_ns(time_ns, "time_ns")
        if time_ns < self._now_ns:
            raise SimulationError(
                f"cannot schedule at {time_ns} ns; clock is at {self._now_ns} ns"
            )
        return self._queue.push(time_ns, callback)

    def schedule_after(
        self,
        delay_ns: int,
        callback: Callable[[], Any],
        _new=Event.__new__,
        _Event=Event,
        _next=next,
    ) -> Event:
        """Schedule ``callback`` ``delay_ns`` nanoseconds from now.

        The hot scheduling path: reschedule chains call this once per
        dispatched event, so the stable-mode Event construction is
        inlined (``__new__`` + slot stores; the defaulted locals skip
        repeated global loads).
        """
        if type(delay_ns) is not int:
            delay_ns = _as_int_ns(delay_ns, "delay_ns")
        if delay_ns < 0:
            raise SimulationError(f"negative delay {delay_ns}")
        queue = self._queue
        if queue._tiebreak_rng is not None:
            return queue.push(self._now_ns + delay_ns, callback)
        time_ns = self._now_ns + delay_ns
        event = _new(_Event)
        event.time_ns = time_ns
        event.seq = _next(queue._counter)
        event.callback = callback
        event.cancelled = False
        event._queue = queue
        queue._pend_append(event)
        if time_ns >= queue._pend_last:
            queue._pend_last = time_ns
        else:
            queue._pend_last = _UNORDERED
        if time_ns < queue._pending_min:
            queue._pending_min = time_ns
        return event

    # --- execution -------------------------------------------------------

    def run_until(self, time_ns: int) -> None:
        """Execute all events up to and including ``time_ns``; set clock there.

        Same contract as the reference loop; the mechanics differ.  The
        inner loop walks the sorted run by index — no heap sift, no
        bounds check (the run is sentinel-terminated) — while ``limit``
        tracks ``min(earliest pending event, horizon)`` so an event
        scheduled from a callback can never be overtaken.  When the run
        is exhausted or a pending event comes due, the buffer is merged
        into a fresh run and dispatch continues.  ``_idx``/``_live``
        sync in the ``finally`` block, so queue state is consistent even
        if a callback raises (matching the reference's pop-then-call
        semantics: the raising event counts as consumed).
        """
        time_ns = _as_int_ns(time_ns, "time_ns")
        if time_ns < self._now_ns:
            raise SimulationError(
                f"cannot run backwards to {time_ns} ns from {self._now_ns} ns"
            )
        if self._running:
            raise SimulationError("run_until called re-entrantly from a callback")
        queue = self._queue
        if self._obs is not None:
            self._running = True
            try:
                self._run_instrumented(queue, time_ns)
                self._now_ns = time_ns
            finally:
                self._running = False
            return
        self._running = True
        # Stable mode may drain the current run up to and including a tie
        # with the earliest pending event (pending seqs are always larger:
        # the counter is monotone and pending events were pushed later).
        # Shuffle mode must merge *before* dispatching at the tie time —
        # a pending event can hold a smaller random seq.
        shift = 0 if queue._tiebreak_rng is None else 1
        # The loop bounds drains by `_pending_min` alone, so step-path
        # backlog entries must be folded into the run before dispatch.
        if queue._backlog:
            queue._merge()
        srt = queue._sorted
        idx = queue._idx
        # Live-count accounting is deferred to the segment boundary:
        # fired = (idx - base) - skipped, so the hot loop only counts the
        # rare cancelled-skip branch.
        base = idx
        skipped = 0
        pmin = queue._pending_min
        plim = pmin - shift
        limit = plim if plim < time_ns else time_ns
        try:
            while True:
                while True:
                    event = srt[idx]
                    t = event.time_ns
                    if t > limit:
                        break
                    idx += 1
                    if event.cancelled:
                        queue._stale -= 1
                        skipped += 1
                        continue
                    event._queue = None
                    self._now_ns = t
                    event.callback()
                    npmin = queue._pending_min
                    if npmin < pmin:
                        pmin = npmin
                        plim = pmin - shift
                        limit = plim if plim < time_ns else time_ns
                # Run exhausted up to `limit`: either everything due has
                # fired (pending all beyond the horizon) or a merge is due.
                if pmin > time_ns:
                    break
                queue._idx = idx
                queue._live -= idx - base - skipped
                base = 0
                skipped = 0
                srt = queue._merge()
                idx = 0
                pmin = _INF
                limit = time_ns
            self._now_ns = time_ns
        finally:
            queue._idx = idx
            queue._live -= idx - base - skipped
            self._running = False

    def _run_instrumented(self, queue: BatchedEventQueue, time_ns: int) -> None:
        """The batched dispatch loop with obs instrumentation.

        Duplicated from :meth:`run_until` (not merged with per-event
        branches) for the same reason as the reference engine: the
        disabled path must stay within the obs overhead budget.
        """
        tracer = self._obs.tracer
        t0_wall_ns = tracer.now_ns()
        t0_sim_ns = self._now_ns
        dispatched = 0
        # Tie handling mirrors run_until: see the `shift` comment there.
        shift = 0 if queue._tiebreak_rng is None else 1
        if queue._backlog:
            queue._merge()
        srt = queue._sorted
        idx = queue._idx
        pmin = queue._pending_min
        plim = pmin - shift
        limit = plim if plim < time_ns else time_ns
        fired = 0
        try:
            while True:
                while True:
                    event = srt[idx]
                    t = event.time_ns
                    if t > limit:
                        break
                    idx += 1
                    if event.cancelled:
                        queue._stale -= 1
                        continue
                    fired += 1
                    event._queue = None
                    self._now_ns = t
                    event.callback()
                    dispatched += 1
                    npmin = queue._pending_min
                    if npmin < pmin:
                        pmin = npmin
                        plim = pmin - shift
                        limit = plim if plim < time_ns else time_ns
                if pmin > time_ns:
                    break
                queue._idx = idx
                queue._live -= fired
                fired = 0
                srt = queue._merge()
                idx = 0
                pmin = _INF
                limit = time_ns
        finally:
            queue._idx = idx
            queue._live -= fired
            if dispatched:
                self._obs_dispatched.inc(dispatched)
                self._obs_batches.observe(dispatched)
                tracer.complete(
                    "sim.dispatch",
                    cat="sim",
                    track=self._obs_track,
                    t0_wall_ns=t0_wall_ns,
                    sim_t0_ns=t0_sim_ns,
                    sim_t1_ns=self._now_ns,
                    events=dispatched,
                )
            self._obs_depth.set(queue._live + len(queue._pending))
            compactions = queue.compactions
            if compactions != self._obs_compact_seen:
                self._obs_compactions.inc(compactions - self._obs_compact_seen)
                self._obs_compact_seen = compactions
