"""Event and event-queue primitives for the discrete-event engine.

Events are ordered by ``(time_ns, sequence)``; the monotonically increasing
sequence number makes ordering *stable*: two events scheduled for the same
nanosecond fire in scheduling order.  Stability matters for reproducibility
— the machine model relies on it so that, e.g., an SMU slot boundary
observes all requests issued "before" it at the same timestamp.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time_ns:
        Absolute simulation time at which the event fires.
    seq:
        Tie-breaking sequence number (assigned by the queue).
    callback:
        Zero-argument callable invoked when the event fires.
    cancelled:
        Cancelled events stay in the heap but are skipped when popped
        (lazy deletion — O(1) cancel).
    """

    time_ns: int
    seq: int | tuple[int, int]
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will never fire."""
        self.cancelled = True


class EventQueue:
    """A stable min-heap of :class:`Event` objects.

    With ``tiebreak_rng`` set (a seeded :class:`numpy.random.Generator`,
    derived via :class:`repro.sim.rng.RngFactory`), same-timestamp ties
    are broken by a random draw instead of scheduling order — the
    event-order shuffle mode :mod:`repro.lint.shuffle` uses to detect
    ordering races.  Each shuffled ordering is itself reproducible; the
    scheduling counter still backs the draw so the order stays total.
    """

    def __init__(self, *, tiebreak_rng=None) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._tiebreak_rng = tiebreak_rng

    def _next_seq(self) -> int | tuple[int, int]:
        if self._tiebreak_rng is None:
            return next(self._counter)
        return (int(self._tiebreak_rng.integers(1 << 62)), next(self._counter))

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return any(not e.cancelled for e in self._heap)

    def push(self, time_ns: int, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute time ``time_ns``."""
        if time_ns < 0:
            raise SimulationError(f"cannot schedule at negative time {time_ns}")
        event = Event(time_ns=time_ns, seq=self._next_seq(), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> int | None:
        """Fire time of the earliest pending event, or None if empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].time_ns

    def pop(self) -> Event:
        """Remove and return the earliest pending event."""
        self._drop_cancelled_head()
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
