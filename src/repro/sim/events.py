"""Event and event-queue primitives for the discrete-event engine.

Events are ordered by ``(time_ns, sequence)``; the monotonically increasing
sequence number makes ordering *stable*: two events scheduled for the same
nanosecond fire in scheduling order.  Stability matters for reproducibility
— the machine model relies on it so that, e.g., an SMU slot boundary
observes all requests issued "before" it at the same timestamp.

The queue is the hottest data structure in the repository (the Fig 3
experiment schedules hundreds of thousands of events per run), so its
layout is chosen for the CPython fast paths that ``heapq`` exercises:

* heap entries are plain ``(time_ns, seq, Event)`` tuples, so sift
  comparisons are native tuple comparisons that never call back into
  Python-level ``__lt__`` (``seq`` is unique per queue, so the
  :class:`Event` in slot 2 is never compared);
* :class:`Event` uses ``__slots__`` — no per-event ``__dict__``;
* the number of *live* (non-cancelled) events is maintained as a counter,
  so ``len(queue)`` / ``bool(queue)`` are O(1) instead of an O(n) scan;
* cancellation stays lazy (O(1)), but once stale cancelled entries
  outnumber live ones the heap is compacted in one O(n) pass, so
  cancel-heavy workloads (e.g. repeatedly cancelled C-state wakeup
  timers) cannot leak heap entries for the rest of the run.
"""

from __future__ import annotations

import itertools
from heapq import heapify, heappop, heappush
from typing import Any, Callable

from repro.errors import SimulationError


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time_ns:
        Absolute simulation time at which the event fires.
    seq:
        Tie-breaking sequence number (assigned by the queue; unique, so
        heap ordering never needs to compare events themselves).
    callback:
        Zero-argument callable invoked when the event fires.
    cancelled:
        Cancelled events stay in the heap but are skipped when popped
        (lazy deletion — O(1) cancel); the owning queue keeps its live
        count and stale-entry accounting in sync.
    """

    __slots__ = ("time_ns", "seq", "callback", "cancelled", "_queue")

    def __init__(
        self,
        time_ns: int,
        seq: int | tuple[int, int],
        callback: Callable[[], Any],
        queue: "EventQueue | None" = None,
    ) -> None:
        self.time_ns = time_ns
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event as cancelled; it will never fire.

        Idempotent.  While the event is still resident in its queue, the
        queue is notified so the live count stays exact and compaction
        can trigger; cancelling an already-fired event is a no-op beyond
        setting the flag.
        """
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time_ns}ns seq={self.seq} {state}>"


class EventQueue:
    """A stable min-heap of :class:`Event` objects.

    With ``tiebreak_rng`` set (a seeded :class:`numpy.random.Generator`,
    derived via :class:`repro.sim.rng.RngFactory`), same-timestamp ties
    are broken by a random draw instead of scheduling order — the
    event-order shuffle mode :mod:`repro.lint.shuffle` uses to detect
    ordering races.  Each shuffled ordering is itself reproducible; the
    scheduling counter still backs the draw so the order stays total.

    Invariants (relied on by tests and ``repro.bench``):

    * ``len(queue)`` equals the number of pushed, not-yet-popped,
      not-cancelled events at all times (O(1));
    * ``queue.resident - len(queue)`` is the number of stale cancelled
      entries, and never exceeds ``max(len(queue), COMPACT_MIN_RESIDENT)``
      after a cancel returns.
    """

    #: Compaction never runs below this heap size — for small heaps the
    #: O(n) rebuild costs more than the lazy-deletion pops it saves.
    COMPACT_MIN_RESIDENT = 64

    def __init__(self, *, tiebreak_rng=None) -> None:
        self._heap: list[tuple[int, int | tuple[int, int], Event]] = []
        self._counter = itertools.count()
        self._tiebreak_rng = tiebreak_rng
        self._live = 0
        #: Number of threshold-triggered heap compactions so far.
        self.compactions = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def resident(self) -> int:
        """Heap entries currently resident, including stale cancelled ones."""
        return len(self._heap)

    def push(self, time_ns: int, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute time ``time_ns``."""
        if time_ns < 0:
            raise SimulationError(f"cannot schedule at negative time {time_ns}")
        rng = self._tiebreak_rng
        seq: int | tuple[int, int] = (
            next(self._counter)
            if rng is None
            else (int(rng.integers(1 << 62)), next(self._counter))
        )
        event = Event(time_ns, seq, callback, self)
        heappush(self._heap, (time_ns, seq, event))
        self._live += 1
        return event

    def peek_time(self) -> int | None:
        """Fire time of the earliest pending event, or None if empty."""
        heap = self._heap
        while heap:
            head = heap[0]
            if head[2].cancelled:
                heappop(heap)
                continue
            return head[0]
        return None

    def pop(self) -> Event:
        """Remove and return the earliest pending event."""
        heap = self._heap
        while heap:
            event = heappop(heap)[2]
            if event.cancelled:
                continue
            self._live -= 1
            event._queue = None
            return event
        raise SimulationError("pop from empty event queue")

    def pop_due(self, limit_ns: int) -> Event | None:
        """Pop the earliest pending event with ``time_ns <= limit_ns``.

        Returns ``None`` when the queue is empty or the earliest pending
        event fires later than ``limit_ns``.  One call replaces a
        ``peek_time`` + ``pop`` pair (``Simulator.run_until`` inlines the
        equivalent loop over the raw heap; this method is the reference
        statement of its semantics, and what the property tests drive).
        """
        heap = self._heap
        while heap:
            head = heap[0]
            event = head[2]
            if event.cancelled:
                heappop(heap)
                continue
            if head[0] > limit_ns:
                return None
            heappop(heap)
            self._live -= 1
            event._queue = None
            return event
        return None

    def _note_cancel(self) -> None:
        """Bookkeeping for an in-queue cancel (called by :meth:`Event.cancel`)."""
        self._live -= 1
        resident = len(self._heap)
        if resident >= self.COMPACT_MIN_RESIDENT and resident - self._live > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop all stale cancelled entries and re-heapify (O(n)).

        Rebuilds *in place* (slice assignment): ``Simulator.run_until``
        holds a direct reference to the heap list across callbacks, and a
        callback may cancel enough events to trigger compaction mid-loop.
        """
        self._heap[:] = [entry for entry in self._heap if not entry[2].cancelled]
        heapify(self._heap)
        self.compactions += 1

    def clear(self) -> None:
        """Drop all pending events."""
        for entry in self._heap:
            entry[2]._queue = None
        self._heap.clear()
        self._live = 0
