# lint: disable-file=UNIT001 — this module IS the conversion authority: it
# crosses unit scales on purpose, and cycles_to_ns deliberately returns
# fractional ns (analytic quantity, not event-engine time).
"""Unit helpers and conversions used across the simulator.

Conventions (see DESIGN.md §7):

* **time** is kept as integer nanoseconds (``t_ns``).  Integer time keeps
  the discrete-event engine exact: two events scheduled at the same
  nanosecond compare equal, and no drift accumulates over long runs.
* **frequency** is float hertz (``f_hz``).  Hardware P-states are defined
  on a 25 MHz grid (:data:`PSTATE_FREQ_STEP_HZ`), matching the frequency
  multiplier granularity of the AMD family 17h P-state MSRs.
* **power** is float watts (``p_w``), **energy** float joules (``e_j``).
* **voltage** is float volts (``v_v``).

Only trivial, allocation-free helpers live here so that every other module
can import this one without cycles.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


def us(value: float) -> int:
    """Microseconds -> integer nanoseconds."""
    return round(value * NS_PER_US)


def ms(value: float) -> int:
    """Milliseconds -> integer nanoseconds."""
    return round(value * NS_PER_MS)


def s(value: float) -> int:
    """Seconds -> integer nanoseconds."""
    return round(value * NS_PER_S)


def ns_to_us(t_ns: int) -> float:
    """Integer nanoseconds -> float microseconds."""
    return t_ns / NS_PER_US


def ns_to_ms(t_ns: int) -> float:
    """Integer nanoseconds -> float milliseconds."""
    return t_ns / NS_PER_MS


def ns_to_s(t_ns: int) -> float:
    """Integer nanoseconds -> float seconds."""
    return t_ns / NS_PER_S


# --- frequency --------------------------------------------------------------

KHZ = 1_000.0
MHZ = 1_000_000.0
GHZ = 1_000_000_000.0

#: Frequency granularity of Zen 2 P-state definitions ("Precision Boost"
#: advertises 25 MHz steps; the P-state MSR frequency multiplier encodes
#: multiples of 25 MHz).
PSTATE_FREQ_STEP_HZ = 25 * MHZ


def mhz(value: float) -> float:
    """Megahertz -> hertz."""
    return value * MHZ


def ghz(value: float) -> float:
    """Gigahertz -> hertz."""
    return value * GHZ


def hz_to_mhz(f_hz: float) -> float:
    """Hertz -> megahertz."""
    return f_hz / MHZ


def hz_to_ghz(f_hz: float) -> float:
    """Hertz -> gigahertz."""
    return f_hz / GHZ


def snap_to_pstate_grid(f_hz: float) -> float:
    """Snap an arbitrary frequency to the nearest 25 MHz P-state grid point.

    The SMU can only apply frequencies representable in the P-state MSR
    multiplier field, so every internally applied frequency passes through
    this function.
    """
    return round(f_hz / PSTATE_FREQ_STEP_HZ) * PSTATE_FREQ_STEP_HZ


def cycles_to_ns(cycles: float, f_hz: float) -> float:
    """Duration of ``cycles`` clock cycles at ``f_hz``, in nanoseconds."""
    if f_hz <= 0:
        raise ValueError(f"frequency must be positive, got {f_hz!r}")  # EXC001: argument validation
    return cycles * NS_PER_S / f_hz


def ns_to_cycles(t_ns: float, f_hz: float) -> float:
    """Number of cycles elapsing in ``t_ns`` at ``f_hz``."""
    return t_ns * f_hz / NS_PER_S


# --- energy -----------------------------------------------------------------

#: RAPL energy status unit on AMD family 17h: 2**-16 J per LSB
#: (ESU field of the RAPL_PWR_UNIT MSR reads 16 on Zen 2).
RAPL_ENERGY_UNIT_J = 2.0**-16

#: RAPL energy counters are 32-bit and wrap.
RAPL_COUNTER_WRAP = 2**32


def joules_to_rapl_units(e_j: float) -> int:
    """Energy in joules -> integer RAPL counter increments (truncating)."""
    return int(e_j / RAPL_ENERGY_UNIT_J)


def rapl_units_to_joules(raw: int) -> float:
    """Integer RAPL counter value -> joules."""
    return raw * RAPL_ENERGY_UNIT_J
