"""Schema-versioned JSON document for benchmark results.

Every ``repro.bench`` run emits one document under
``benchmarks/results/`` (``BENCH_*.json``).  The document is versioned
(``schema`` / ``schema_version``) so downstream tooling — the CI smoke
job, trend plots, the golden-diff style comparisons — can reject files
it does not understand instead of misreading them.

The document carries the raw per-repetition ``samples`` next to the
derived median/p10/p90, so any consumer can re-derive (and
:func:`validate_document` re-checks) the statistics from first
principles.  No timestamps or hostnames are embedded: two runs on the
same interpreter differ only where the timings themselves differ.
"""

from __future__ import annotations

import platform
import sys

from repro.bench.harness import BenchContext, KernelResult, percentile

SCHEMA_ID = "repro.bench/result"
SCHEMA_VERSION = 1

COMPARE_SCHEMA_ID = "repro.bench/backend-compare"
COMPARE_SCHEMA_VERSION = 1

#: Relative tolerance when re-checking derived statistics against the
#: raw samples (floating-point round-trip through JSON text).
_STAT_RTOL = 1e-9

_REQUIRED_KERNEL_FIELDS = {
    "name": str,
    "description": str,
    "unit": str,
    "better": str,
    "warmup": int,
    "reps": int,
    "ops_per_rep": int,
    "samples": list,
    "median": float,
    "p10": float,
    "p90": float,
}


def document_from_results(
    results: list[KernelResult],
    *,
    ctx: BenchContext,
    warmup: int,
    reps: int,
) -> dict:
    """Assemble the schema-versioned result document."""
    return {
        "schema": SCHEMA_ID,
        "schema_version": SCHEMA_VERSION,
        "seed": ctx.seed,
        "scale": ctx.scale,
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "params": {"warmup": warmup, "reps": reps},
        "kernels": [
            {
                "name": r.name,
                "description": r.description,
                "unit": r.unit,
                "better": r.better,
                "warmup": r.warmup,
                "reps": r.reps,
                "ops_per_rep": r.ops_per_rep,
                "samples": list(r.samples),
                "median": r.median,
                "p10": r.p10,
                "p90": r.p90,
            }
            for r in results
        ],
    }


def document_from_compare(verdict: dict, *, ctx: BenchContext) -> dict:
    """Assemble the backend-compare document from
    :func:`~repro.bench.harness.run_backend_compare` output."""
    return {
        "schema": COMPARE_SCHEMA_ID,
        "schema_version": COMPARE_SCHEMA_VERSION,
        "seed": ctx.seed,
        "scale": ctx.scale,
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "backends": list(verdict["backends"]),
        "rounds": verdict["rounds"],
        "kernels": verdict["kernels"],
    }


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _STAT_RTOL * max(abs(a), abs(b), 1e-300)


def validate_compare_document(doc: object) -> list[str]:
    """Validate a backend-compare document; return a list of problems.

    Re-derives every median/p10/p90 and the speedup ratio from the raw
    interleaved samples, like :func:`validate_document` does for the
    plain result schema.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be a JSON object, got {type(doc).__name__}"]
    if doc.get("schema") != COMPARE_SCHEMA_ID:
        errors.append(
            f"schema must be {COMPARE_SCHEMA_ID!r}, got {doc.get('schema')!r}"
        )
    if doc.get("schema_version") != COMPARE_SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {COMPARE_SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}"
        )
    backends = doc.get("backends")
    if (
        not isinstance(backends, list)
        or len(backends) != 2
        or not all(isinstance(b, str) for b in backends)
    ):
        errors.append("backends must be a list of two backend names")
        return errors
    rounds = doc.get("rounds")
    if not isinstance(rounds, int) or isinstance(rounds, bool) or rounds < 1:
        errors.append("rounds must be a positive integer")
    kernels = doc.get("kernels")
    if not isinstance(kernels, dict) or not kernels:
        errors.append("kernels must be a non-empty object")
        return errors
    for name, entry in kernels.items():
        where = f"kernels[{name}]"
        if not isinstance(entry, dict):
            errors.append(f"{where} must be an object")
            continue
        if entry.get("better") not in ("higher", "lower"):
            errors.append(f"{where}.better must be 'higher' or 'lower'")
        if not isinstance(entry.get("unit"), str):
            errors.append(f"{where}.unit must be a string")
        medians = []
        for backend in backends:
            side = entry.get(backend)
            bwhere = f"{where}.{backend}"
            if not isinstance(side, dict):
                errors.append(f"{bwhere} must be an object")
                medians.append(None)
                continue
            samples = side.get("samples")
            if (
                not isinstance(samples, list)
                or not samples
                or not all(
                    isinstance(s, (int, float)) and not isinstance(s, bool)
                    for s in samples
                )
            ):
                errors.append(f"{bwhere}.samples must be non-empty numbers")
                medians.append(None)
                continue
            if isinstance(rounds, int) and len(samples) != rounds:
                errors.append(f"{bwhere}: len(samples) must equal rounds")
            for stat, q in (("median", 50.0), ("p10", 10.0), ("p90", 90.0)):
                value = side.get(stat)
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    errors.append(f"{bwhere}.{stat} must be a number")
                elif not _close(float(value), percentile(list(samples), q)):
                    errors.append(f"{bwhere}.{stat} does not match its samples")
            medians.append(side.get("median"))
        speedup = entry.get("speedup")
        if not isinstance(speedup, (int, float)) or isinstance(speedup, bool):
            errors.append(f"{where}.speedup must be a number")
        elif all(isinstance(m, (int, float)) for m in medians):
            if entry.get("better") == "higher":
                expected = medians[1] / medians[0]
            else:
                expected = medians[0] / medians[1]
            if not _close(float(speedup), expected):
                errors.append(f"{where}.speedup does not match the medians")
    return errors


def validate_document(doc: object) -> list[str]:
    """Validate a parsed result document; return a list of problems.

    An empty list means the document conforms.  Checks structure, types,
    and that the derived statistics match the embedded raw samples.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be a JSON object, got {type(doc).__name__}"]
    if doc.get("schema") != SCHEMA_ID:
        errors.append(f"schema must be {SCHEMA_ID!r}, got {doc.get('schema')!r}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {SCHEMA_VERSION}, got {doc.get('schema_version')!r}"
        )
    if not isinstance(doc.get("seed"), int):
        errors.append("seed must be an integer")
    if not isinstance(doc.get("scale"), (int, float)):
        errors.append("scale must be a number")
    if not isinstance(doc.get("python"), str):
        errors.append("python must be a version string")
    params = doc.get("params")
    if not isinstance(params, dict):
        errors.append("params must be an object")
    else:
        for key in ("warmup", "reps"):
            if not isinstance(params.get(key), int):
                errors.append(f"params.{key} must be an integer")
    kernels = doc.get("kernels")
    if not isinstance(kernels, list) or not kernels:
        errors.append("kernels must be a non-empty list")
        return errors
    seen: set[str] = set()
    for i, entry in enumerate(kernels):
        where = f"kernels[{i}]"
        if not isinstance(entry, dict):
            errors.append(f"{where} must be an object")
            continue
        for key, expected in _REQUIRED_KERNEL_FIELDS.items():
            value = entry.get(key)
            if expected is float:
                ok = isinstance(value, (int, float)) and not isinstance(value, bool)
            elif expected is int:
                ok = isinstance(value, int) and not isinstance(value, bool)
            else:
                ok = isinstance(value, expected)
            if not ok:
                errors.append(f"{where}.{key} must be {expected.__name__}")
        name = entry.get("name")
        if isinstance(name, str):
            if name in seen:
                errors.append(f"{where}: duplicate kernel name {name!r}")
            seen.add(name)
            where = f"kernels[{name}]"
        if entry.get("better") not in ("higher", "lower"):
            errors.append(f"{where}.better must be 'higher' or 'lower'")
        samples = entry.get("samples")
        if isinstance(samples, list):
            if not samples:
                errors.append(f"{where}.samples must be non-empty")
            elif not all(
                isinstance(s, (int, float)) and not isinstance(s, bool)
                for s in samples
            ):
                errors.append(f"{where}.samples must contain only numbers")
            else:
                if entry.get("reps") != len(samples):
                    errors.append(f"{where}.reps must equal len(samples)")
                for stat, q in (("median", 50.0), ("p10", 10.0), ("p90", 90.0)):
                    value = entry.get(stat)
                    if isinstance(value, (int, float)) and not _close(
                        float(value), percentile(list(samples), q)
                    ):
                        errors.append(
                            f"{where}.{stat} does not match its samples"
                        )
    return errors
