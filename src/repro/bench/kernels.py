"""The registered benchmark kernels.

Each kernel pins one hot path named in the paper's workflow:

* ``event_queue.*`` — the :class:`repro.sim.events.EventQueue` operation
  mixes that dominate the §V-B timing experiment (hundreds of thousands
  of scheduled events per run), in both stable and shuffle tie-break
  modes, plus the cancel-heavy pattern of repeatedly cancelled C-state
  wakeup timers that used to leak heap entries;
* ``sim.dispatch`` — the ``Simulator.run_until`` dispatch loop
  (schedule-fire-reschedule chains, the shape of SMU slot machinery);
* ``machine.measure.*`` — the §IV 10 s measurement-interval workflow at
  several scales (interval length, package count);
* ``obs.overhead`` — the same dispatch loop with the full
  :mod:`repro.obs` bundle attached, pinning the enabled-path tracing
  cost (docs/observability.md documents the overhead budget);
* ``suite.e2e`` — end-to-end structured suite wall clock.

Kernels are deterministic: operation sequences are pre-generated from
seeded streams in ``setup`` (outside the timed region), and nothing a
kernel simulates depends on host time.
"""

from __future__ import annotations

from typing import Callable

from repro.bench.harness import BenchContext, Kernel
from repro.errors import ConfigurationError
from repro.sim.backends import resolve_backend
from repro.sim.rng import RngFactory


def _queue_cls(ctx: BenchContext):
    """The event-queue class of the context's backend."""
    return resolve_backend(ctx.backend).simulator_cls._queue_cls


def _noop() -> None:
    return None


# ---------------------------------------------------------------------------
# event-queue operation mixes
# ---------------------------------------------------------------------------


def _setup_queue_mixed(ctx: BenchContext, *, shuffle: bool) -> Callable[[], int]:
    n_ops = max(1_000, int(80_000 * ctx.scale))
    rng = RngFactory(ctx.seed).child("bench/event-queue-mix")
    times = [int(t) for t in rng.integers(0, 10_000_000, size=n_ops)]
    # 0-5: push, 6-7: cancel newest, 8-9: pop earliest.
    op_codes = [int(o) for o in rng.integers(0, 10, size=n_ops)]
    factory = RngFactory(ctx.seed)
    queue_cls = _queue_cls(ctx)

    def run() -> int:
        tiebreak = factory.child("bench/tiebreak") if shuffle else None
        q = queue_cls(tiebreak_rng=tiebreak)
        live = []
        count = 0
        for t, op in zip(times, op_codes):
            if op < 6 or not live:
                live.append(q.push(t, _noop))
            elif op < 8:
                live.pop().cancel()
            elif q:
                q.pop()
            count += 1
        while q:
            q.pop()
            count += 1
        return count

    return run


def _setup_queue_cancel_churn(ctx: BenchContext) -> Callable[[], int]:
    """The C-state wakeup-timer pattern: schedule, then almost always cancel.

    Seven of every eight scheduled timers are cancelled before they fire
    — the lazy-deletion leak this mix used to accumulate is now bounded
    by threshold compaction (see ``tests/unit/test_sim_events.py``).
    """
    n_timers = max(1_000, int(60_000 * ctx.scale))
    queue_cls = _queue_cls(ctx)

    def run() -> int:
        q = queue_cls()
        count = 0
        for i in range(n_timers):
            event = q.push(i * 1_000, _noop)
            count += 1
            if i % 8 != 0:
                event.cancel()
                count += 1
            if i % 64 == 63:
                # Periodically drain everything due so far, like a
                # simulator slot boundary passing over the grid.
                while q.peek_time() is not None and q.peek_time() <= i * 1_000:
                    q.pop()
                    count += 1
        while q:
            q.pop()
            count += 1
        return count

    return run


# ---------------------------------------------------------------------------
# simulator dispatch loop
# ---------------------------------------------------------------------------


def _setup_sim_dispatch(
    ctx: BenchContext, *, obs_mode: str = "none"
) -> Callable[[], int]:
    n_events = max(2_000, int(150_000 * ctx.scale))
    # 256 concurrent reschedule chains keep ~256 events resident — the
    # regime a loaded machine runs in (per-die SMU slots, RAPL samplers,
    # in-flight transitions), where heap-sift comparison cost shows up.
    chains = 256
    period_ns = 1_000

    backend = resolve_backend(ctx.backend)

    def run() -> int:
        if obs_mode in ("none", "flightrec"):
            sim = backend.create_simulator()
        else:
            from repro.obs import Obs

            # "disabled" attaches an Obs(enabled=False): effective_obs
            # collapses it to None, so this must time like bare dispatch.
            sim = backend.create_simulator(obs=Obs(enabled=obs_mode == "full"))
        fired = [0]

        def cb() -> None:  # lint: hot (per-event dispatch callback)
            fired[0] += 1
            if fired[0] <= n_events - chains:
                sim.schedule_after(period_ns, cb)

        if obs_mode == "flightrec":
            # Bare dispatch plus the flight-recorder ring feed: one of
            # the 256 chains records a breadcrumb on every firing (one
            # ring event per ~256 dispatches — far denser than the real
            # cold-boundary breadcrumbs), while the other 255 run the
            # unmodified callback.  This times the ring's deque-append
            # cost itself, without polluting every event with a
            # benchmark-only counter check.
            from repro.obs.flightrec import recorder

            rec = recorder()

            def cb_note() -> None:  # lint: hot (per-event dispatch callback)
                fired[0] += 1
                rec.note("bench.tick")
                if fired[0] <= n_events - chains:
                    sim.schedule_after(period_ns, cb_note)

        else:
            cb_note = cb

        sim.schedule_after(1, cb_note)
        for i in range(1, chains):
            sim.schedule_after(i + 1, cb)
        horizon_ns = (n_events // chains + 2) * period_ns + chains
        sim.run_until(horizon_ns)
        return fired[0]

    return run


# ---------------------------------------------------------------------------
# machine measurement workflow
# ---------------------------------------------------------------------------


def _setup_machine_measure(
    ctx: BenchContext, *, duration_s: float, n_packages: int
) -> Callable[[], int]:
    from repro.machine import Machine
    from repro.units import ghz
    from repro.workloads import PAUSE_LOOP

    machine = Machine(
        "EPYC 7502", n_packages=n_packages, seed=ctx.seed, backend=ctx.backend
    )
    machine.os.set_all_frequencies(ghz(2.2))
    machine.os.run(PAUSE_LOOP, [0, 1, 2, 3])

    def run() -> int:
        machine.measure(duration_s)
        return 1

    return run


# ---------------------------------------------------------------------------
# end-to-end suite
# ---------------------------------------------------------------------------


def _setup_suite_e2e(ctx: BenchContext) -> Callable[[], int]:
    from repro.core.experiment import ExperimentConfig
    from repro.core.suite import run_suite

    cfg = ExperimentConfig(
        seed=ctx.seed, scale=0.02 * min(1.0, ctx.scale), backend=ctx.backend
    )

    def run() -> int:
        run_suite(cfg, parallel=1, cache=None)
        return 1

    return run


REGISTRY: dict[str, Kernel] = {
    kernel.name: kernel
    for kernel in (
        Kernel(
            name="event_queue.mixed",
            description="push/pop/cancel mix (60/20/20), stable tie-break",
            unit="ops/s",
            better="higher",
            setup=lambda ctx: _setup_queue_mixed(ctx, shuffle=False),
        ),
        Kernel(
            name="event_queue.mixed_shuffle",
            description="push/pop/cancel mix, seeded-random tie-break (shuffle mode)",
            unit="ops/s",
            better="higher",
            setup=lambda ctx: _setup_queue_mixed(ctx, shuffle=True),
        ),
        Kernel(
            name="event_queue.cancel_churn",
            description="wakeup-timer churn: 7/8 of scheduled events cancelled",
            unit="ops/s",
            better="higher",
            setup=_setup_queue_cancel_churn,
        ),
        Kernel(
            name="sim.dispatch",
            description="Simulator.run_until dispatch rate (256 reschedule chains)",
            unit="events/s",
            better="higher",
            setup=_setup_sim_dispatch,
        ),
        Kernel(
            name="obs.overhead",
            description="sim.dispatch with full repro.obs instrumentation "
            "attached (counters, gauges, dispatch spans); compare against "
            "sim.dispatch for the enabled-path cost — the disabled path "
            "must stay within 2% of the committed sim.dispatch baseline",
            unit="events/s",
            better="higher",
            setup=lambda ctx: _setup_sim_dispatch(ctx, obs_mode="full"),
        ),
        Kernel(
            name="obs.overhead_disabled",
            description="sim.dispatch with a *disabled* repro.obs bundle "
            "attached; effective_obs collapses it to None at attach time, "
            "so this must match sim.dispatch — the pair backs the "
            "'--guard' overhead budget check (<=2%)",
            unit="events/s",
            better="higher",
            setup=lambda ctx: _setup_sim_dispatch(ctx, obs_mode="disabled"),
        ),
        Kernel(
            name="obs.flightrec_overhead",
            description="sim.dispatch plus the flight-recorder ring "
            "feed (one breadcrumb chain among 256): bounds the "
            "always-on crash ring's cost under the hottest loop — "
            "guarded against sim.dispatch with the same <=2% budget "
            "as the obs disabled path",
            unit="events/s",
            better="higher",
            setup=lambda ctx: _setup_sim_dispatch(ctx, obs_mode="flightrec"),
        ),
        Kernel(
            name="machine.measure.1s",
            description="Machine.measure(1 s) latency, 2 packages",
            unit="s",
            better="lower",
            setup=lambda ctx: _setup_machine_measure(ctx, duration_s=1.0, n_packages=2),
        ),
        Kernel(
            name="machine.measure.10s",
            description="Machine.measure(10 s) latency, 2 packages (the §IV interval)",
            unit="s",
            better="lower",
            setup=lambda ctx: _setup_machine_measure(ctx, duration_s=10.0, n_packages=2),
        ),
        Kernel(
            name="machine.measure.10s_1pkg",
            description="Machine.measure(10 s) latency, single package",
            unit="s",
            better="lower",
            setup=lambda ctx: _setup_machine_measure(ctx, duration_s=10.0, n_packages=1),
        ),
        Kernel(
            name="suite.e2e",
            description="full structured suite, serial, no cache (scale 0.02)",
            unit="s",
            better="lower",
            setup=_setup_suite_e2e,
            tags=("slow",),
            max_reps=2,
        ),
    )
}


def kernel_names() -> list[str]:
    return list(REGISTRY)


def select_kernels(
    only: list[str] | None = None, *, smoke: bool = False
) -> list[Kernel]:
    """Resolve a kernel subset; unknown names raise."""
    if only:
        unknown = [name for name in only if name not in REGISTRY]
        if unknown:
            raise ConfigurationError(
                f"unknown bench kernel(s) {unknown}; available: {kernel_names()}"
            )
        kernels = [REGISTRY[name] for name in only]
    else:
        kernels = list(REGISTRY.values())
    if smoke:
        kernels = [k for k in kernels if "quick" in k.tags]
    return kernels
