# lint: disable-file=DET001 — this module is the one place in the tree
# that deliberately reads the wall clock: it *measures* host execution
# time of simulator kernels.  Timings flow only into reported statistics,
# never into simulated state (the kernels themselves stay deterministic).
"""Timing harness: warmup, repetitions, robust statistics.

A :class:`Kernel` is a named benchmark: its ``setup(ctx)`` builds all
fixtures (machines, pre-generated operation sequences) *outside* the
timed region and returns a zero-argument ``run()`` callable that performs
the work and returns the number of operations it completed.  The harness
times each repetition with ``time.perf_counter_ns`` and reports the
median / p10 / p90 over repetitions — the median is robust against a
noisy neighbour inflating one rep, and the p10/p90 spread makes that
noise visible instead of silently averaged away.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BenchContext:
    """Run-wide knobs handed to every kernel's ``setup``."""

    #: Work multiplier: 1.0 is the standard op count of each kernel;
    #: smoke runs scale down, saturation studies scale up.
    scale: float = 1.0
    #: Seed for every stochastic fixture (via :class:`repro.sim.rng.RngFactory`).
    seed: int = 2021
    #: Simulation backend the kernels build against (repro.sim.backends);
    #: None resolves via REPRO_SIM_BACKEND, then "reference".
    backend: str | None = None


@dataclass(frozen=True)
class Kernel:
    """A registered microbenchmark."""

    name: str
    description: str
    #: Sample unit: ``"ops/s"``-style throughput (higher is better) or
    #: ``"s"`` latency/wall-clock (lower is better).
    unit: str
    #: ``"higher"`` or ``"lower"`` — which direction is an improvement.
    better: str
    #: ``setup(ctx)`` returns ``run() -> int`` (operations completed).
    setup: Callable[[BenchContext], Callable[[], int]]
    #: ``"quick"`` kernels run in the CI smoke pass; ``"slow"`` ones
    #: (e.g. the end-to-end suite) only in the full run.
    tags: tuple[str, ...] = ("quick",)
    #: Per-kernel repetition override (None = harness default); the
    #: end-to-end suite kernel caps its reps to keep ``make bench`` sane.
    max_reps: int | None = None


@dataclass
class KernelResult:
    """Statistics of one kernel's timed repetitions."""

    name: str
    description: str
    unit: str
    better: str
    warmup: int
    reps: int
    ops_per_rep: int
    samples: list[float] = field(default_factory=list)

    @property
    def median(self) -> float:
        return percentile(self.samples, 50.0)

    @property
    def p10(self) -> float:
        return percentile(self.samples, 10.0)

    @property
    def p90(self) -> float:
        return percentile(self.samples, 90.0)


def percentile(samples: list[float], q: float) -> float:
    """Linear-interpolation percentile (numpy's default method).

    Kept in pure Python so the reported statistics are trivially
    auditable against the raw ``samples`` list in the JSON document.
    """
    if not samples:
        raise ConfigurationError("percentile of an empty sample list")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile {q} outside [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    pos = (q / 100.0) * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def time_kernel(
    kernel: Kernel,
    ctx: BenchContext,
    *,
    warmup: int,
    reps: int,
) -> KernelResult:
    """Run one kernel: setup, warmup, timed repetitions."""
    if reps < 1:
        raise ConfigurationError(f"reps must be >= 1, got {reps}")
    if warmup < 0:
        raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
    if kernel.max_reps is not None:
        reps = min(reps, kernel.max_reps)
    run = kernel.setup(ctx)
    for _ in range(warmup):
        run()
    samples: list[float] = []
    ops_per_rep = 0
    for _ in range(reps):
        t0_ns = time.perf_counter_ns()
        ops = run()
        elapsed_s = (time.perf_counter_ns() - t0_ns) / 1e9
        ops_per_rep = int(ops)
        if kernel.better == "higher":
            # Throughput: guard against a pathological 0-duration clock
            # read resolution by flooring at 1 ns.
            samples.append(ops / max(elapsed_s, 1e-9))
        else:
            samples.append(elapsed_s)
    return KernelResult(
        name=kernel.name,
        description=kernel.description,
        unit=kernel.unit,
        better=kernel.better,
        warmup=warmup,
        reps=reps,
        ops_per_rep=ops_per_rep,
        samples=samples,
    )


def run_kernels(
    kernels: list[Kernel],
    ctx: BenchContext,
    *,
    warmup: int = 2,
    reps: int = 5,
    progress: Callable[[str], None] | None = None,
) -> list[KernelResult]:
    """Time every kernel in order, optionally reporting progress."""
    results = []
    for kernel in kernels:
        if progress is not None:
            progress(f"bench {kernel.name} ...")
        results.append(time_kernel(kernel, ctx, warmup=warmup, reps=reps))
    return results


#: The obs-disabled dispatch path may cost at most this fraction of bare
#: dispatch throughput (docs/observability.md budget).
GUARD_BUDGET = 0.02
GUARD_BASELINE = "sim.dispatch"
GUARD_CANDIDATE = "obs.overhead_disabled"
#: Second guarded candidate: bare dispatch plus the crash flight
#: recorder's ring feed (a breadcrumb every 256th event) — the
#: always-on diagnostics path shares the disabled-obs 2% budget.
GUARD_FLIGHTREC_CANDIDATE = "obs.flightrec_overhead"


def run_overhead_guard(
    ctx: BenchContext,
    *,
    rounds: int = 5,
    budget: float = GUARD_BUDGET,
    candidate: str = GUARD_CANDIDATE,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Interleaved A/B budget check for an instrumented dispatch path.

    Each round times the baseline (bare ``Simulator``) and the candidate
    kernel (default: ``Obs(enabled=False)`` attached, collapsed by
    ``effective_obs``; ``GUARD_FLIGHTREC_CANDIDATE`` checks the flight-
    recorder ring feed instead) back-to-back, so slow drift in host
    clock frequency or cache state cancels out of the per-round
    throughput ratio.  The verdict is the *median* ratio over rounds —
    robust to one noisy neighbour — and the run passes when the
    candidate keeps at least ``1 - budget`` of the baseline's
    throughput.
    """
    from repro.bench.kernels import REGISTRY

    if rounds < 1:
        raise ConfigurationError(f"guard rounds must be >= 1, got {rounds}")
    if candidate not in REGISTRY:
        raise ConfigurationError(f"unknown guard candidate kernel {candidate!r}")
    candidate_name = candidate
    baseline = REGISTRY[GUARD_BASELINE].setup(ctx)
    candidate = REGISTRY[candidate_name].setup(ctx)
    baseline()
    candidate()  # one untimed warmup each
    ratios: list[float] = []
    for i in range(rounds):
        throughput: list[float] = []
        for run in (baseline, candidate):
            t0_ns = time.perf_counter_ns()
            ops = run()
            elapsed_s = (time.perf_counter_ns() - t0_ns) / 1e9
            throughput.append(ops / max(elapsed_s, 1e-9))
        ratios.append(throughput[1] / throughput[0])
        if progress is not None:
            progress(f"guard round {i + 1}/{rounds}: ratio {ratios[-1]:.4f}")
    median_ratio = percentile(ratios, 50.0)
    return {
        "baseline": GUARD_BASELINE,
        "candidate": candidate_name,
        "rounds": rounds,
        "budget": budget,
        "ratios": ratios,
        "median_ratio": median_ratio,
        "ok": median_ratio >= 1.0 - budget,
    }


#: Default kernel set for backend-vs-backend comparison: the dispatch
#: loop the batched backend targets, both queue operation mixes, and one
#: end-to-end machine workflow.
BACKEND_COMPARE_KERNELS = (
    "sim.dispatch",
    "event_queue.mixed",
    "event_queue.cancel_churn",
    "machine.measure.1s",
)


def run_backend_compare(
    ctx: BenchContext,
    *,
    backends: tuple[str, str] = ("reference", "batched"),
    kernels: list[str] | None = None,
    rounds: int = 5,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Backend-vs-backend A/B comparison with interleaved rounds.

    Like :func:`run_overhead_guard`, each round times both backends'
    instantiation of a kernel back-to-back so slow host drift cancels
    out of the ratio, and the reported ``speedup`` is derived from the
    per-backend *median* over rounds (>1 means the second backend wins,
    whatever the kernel's ``better`` direction).  The document this
    feeds is ``benchmarks/results/BENCH_backends.json``.
    """
    from dataclasses import replace

    from repro.bench.kernels import select_kernels

    if rounds < 1:
        raise ConfigurationError(f"compare rounds must be >= 1, got {rounds}")
    names = list(kernels) if kernels else list(BACKEND_COMPARE_KERNELS)
    compared: dict[str, dict] = {}
    for kernel in select_kernels(names):
        runs = [kernel.setup(replace(ctx, backend=b)) for b in backends]
        for run in runs:
            run()  # one untimed warmup per backend
        samples: list[list[float]] = [[] for _ in backends]
        for i in range(rounds):
            for slot, run in enumerate(runs):
                t0_ns = time.perf_counter_ns()
                ops = run()
                elapsed_s = (time.perf_counter_ns() - t0_ns) / 1e9
                if kernel.better == "higher":
                    samples[slot].append(ops / max(elapsed_s, 1e-9))
                else:
                    samples[slot].append(elapsed_s)
            if progress is not None:
                progress(f"compare {kernel.name} round {i + 1}/{rounds}")
        medians = [percentile(s, 50.0) for s in samples]
        if kernel.better == "higher":
            speedup = medians[1] / medians[0]
        else:
            speedup = medians[0] / medians[1]
        compared[kernel.name] = {
            "unit": kernel.unit,
            "better": kernel.better,
            "speedup": speedup,
            backends[0]: {
                "samples": samples[0],
                "median": medians[0],
                "p10": percentile(samples[0], 10.0),
                "p90": percentile(samples[0], 90.0),
            },
            backends[1]: {
                "samples": samples[1],
                "median": medians[1],
                "p10": percentile(samples[1], 10.0),
                "p90": percentile(samples[1], 90.0),
            },
        }
    return {"backends": list(backends), "rounds": rounds, "kernels": compared}
