"""``python -m repro.bench`` — run the kernel registry, emit JSON.

The default full run writes ``benchmarks/results/BENCH_micro.json``
(relative to the working directory); ``--smoke`` runs only the
``quick``-tagged kernels with one repetition and a reduced scale — the
CI configuration, there to prove the harness and schema stay healthy,
not to produce stable numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.harness import BenchContext, run_kernels
from repro.bench.kernels import kernel_names, select_kernels
from repro.bench.schema import document_from_results, validate_document
from repro.core.analysis.tables import format_table
from repro.errors import ConfigurationError

DEFAULT_OUT = "benchmarks/results/BENCH_micro.json"
SMOKE_OUT = "benchmarks/results/BENCH_smoke.json"
BACKENDS_OUT = "benchmarks/results/BENCH_backends.json"


def _render(results) -> str:
    rows = []
    for r in results:
        fmt = "{:,.0f}" if r.better == "higher" else "{:.4f}"
        rows.append(
            (
                r.name,
                r.unit,
                fmt.format(r.median),
                fmt.format(r.p10),
                fmt.format(r.p90),
                f"{r.reps}x{r.ops_per_rep}",
            )
        )
    return format_table(
        ["kernel", "unit", "median", "p10", "p90", "reps x ops"], rows
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Time the simulator's hot-path kernels and write a "
        "schema-versioned JSON document (see docs/performance.md).",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered kernels and exit"
    )
    parser.add_argument(
        "--only",
        metavar="NAMES",
        help="comma-separated kernel names to run (default: all)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: quick kernels only, warmup=0, reps=1, scale<=0.1",
    )
    parser.add_argument(
        "--guard",
        action="store_true",
        help="overhead-budget check: time sim.dispatch against the "
        "obs-disabled variant and the flight-recorder feed variant in "
        "interleaved rounds and exit 1 if either candidate loses more "
        "than the 2%% budget",
    )
    parser.add_argument(
        "--guard-rounds",
        type=int,
        default=5,
        help="interleaved A/B rounds for --guard (default: 5)",
    )
    parser.add_argument(
        "--guard-budget",
        type=float,
        default=None,
        help="override the allowed throughput loss fraction "
        "(default: 0.02); tests use this to pin both verdicts",
    )
    parser.add_argument(
        "--backends",
        action="store_true",
        help="backend-vs-backend mode: time the compare kernel set under "
        "the reference and batched backends in interleaved rounds and "
        "write the speedup document (see docs/backends.md)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=5,
        help="interleaved A/B rounds for --backends (default: 5)",
    )
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="work multiplier applied to each kernel's op count",
    )
    parser.add_argument("--warmup", type=int, default=2)
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument(
        "--out",
        metavar="PATH",
        help=f"output JSON path (default: {DEFAULT_OUT}, or "
        f"{SMOKE_OUT} with --smoke); '-' to skip writing",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in kernel_names():
            print(name)
        return 0

    if args.guard:
        from repro.bench.harness import (
            GUARD_BUDGET,
            GUARD_CANDIDATE,
            GUARD_FLIGHTREC_CANDIDATE,
            run_overhead_guard,
        )

        ctx = BenchContext(scale=args.scale, seed=args.seed)
        budget = GUARD_BUDGET if args.guard_budget is None else args.guard_budget
        labels = {
            GUARD_CANDIDATE: "obs disabled-path guard",
            GUARD_FLIGHTREC_CANDIDATE: "flight-recorder feed guard",
        }
        status = 0
        for candidate, label in labels.items():
            try:
                verdict = run_overhead_guard(
                    ctx,
                    rounds=args.guard_rounds,
                    budget=budget,
                    candidate=candidate,
                    progress=lambda msg: print(msg, file=sys.stderr),
                )
            except ConfigurationError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            print(
                f"{label}: median throughput ratio "
                f"{verdict['median_ratio']:.4f} over {verdict['rounds']} "
                f"round(s), budget {verdict['budget']:.0%} -> "
                f"{'PASS' if verdict['ok'] else 'FAIL'}"
            )
            if not verdict["ok"]:
                status = 1
        return status

    only = [n.strip() for n in args.only.split(",") if n.strip()] if args.only else None

    if args.backends:
        from repro.bench.harness import run_backend_compare
        from repro.bench.schema import (
            document_from_compare,
            validate_compare_document,
        )

        ctx = BenchContext(scale=args.scale, seed=args.seed)
        try:
            verdict = run_backend_compare(
                ctx,
                kernels=only,
                rounds=args.rounds,
                progress=lambda msg: print(msg, file=sys.stderr),
            )
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        ref, cand = verdict["backends"]
        rows = []
        for name, entry in verdict["kernels"].items():
            fmt = "{:,.0f}" if entry["better"] == "higher" else "{:.4f}"
            rows.append(
                (
                    name,
                    entry["unit"],
                    fmt.format(entry[ref]["median"]),
                    fmt.format(entry[cand]["median"]),
                    f"{entry['speedup']:.2f}x",
                )
            )
        print(
            format_table(
                ["kernel", "unit", f"{ref} median", f"{cand} median", "speedup"],
                rows,
            )
        )
        out = args.out or BACKENDS_OUT
        if out == "-":
            return 0
        doc = document_from_compare(verdict, ctx=ctx)
        problems = validate_compare_document(doc)
        if problems:  # pragma: no cover - guards harness bugs
            for p in problems:
                print(f"schema error: {p}", file=sys.stderr)
            return 1
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"results written to {path}")
        return 0
    warmup, reps, scale = args.warmup, args.reps, args.scale
    if args.smoke:
        warmup, reps, scale = 0, 1, min(scale, 0.1)
    try:
        kernels = select_kernels(only, smoke=args.smoke)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not kernels:
        print("error: kernel selection is empty", file=sys.stderr)
        return 2

    ctx = BenchContext(scale=scale, seed=args.seed)
    results = run_kernels(
        kernels,
        ctx,
        warmup=warmup,
        reps=reps,
        progress=lambda msg: print(msg, file=sys.stderr),
    )
    print(_render(results))

    out = args.out or (SMOKE_OUT if args.smoke else DEFAULT_OUT)
    if out == "-":
        return 0
    doc = document_from_results(results, ctx=ctx, warmup=warmup, reps=reps)
    problems = validate_document(doc)
    if problems:  # pragma: no cover - guards harness bugs
        for p in problems:
            print(f"schema error: {p}", file=sys.stderr)
        return 1
    path = Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"results written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
