"""``repro.bench`` — microbenchmark harness for the simulator hot paths.

The ROADMAP's north star is a system that runs "as fast as the hardware
allows"; this subsystem is what holds that claim accountable.  It keeps a
registry of *timed kernels* — event-queue operation mixes, the
``Simulator.run_until`` dispatch loop, ``Machine.measure()`` latency, the
end-to-end suite wall clock — runs each with warmup and repetitions, and
reports robust statistics (median / p10 / p90) as schema-versioned JSON
under ``benchmarks/results/`` (the ``BENCH_*.json`` trajectory).

Measurement infrastructure must not distort what it measures (Diamond et
al., *What Is the Cost of Energy Monitoring?*): kernels therefore take no
wall-clock reads inside simulated work, pre-generate their operation
sequences outside the timed region, and never let a measured duration
feed back into simulator state — ``repro lint``'s determinism rules run
over this package like any other.

Entry points::

    python -m repro.bench            # full registry
    python -m repro.bench --smoke    # quick subset, 1 rep (CI)
    repro-zen2 bench ...             # same CLI, forwarded
    make bench / make bench-smoke

See ``docs/performance.md`` for the JSON schema and the invariants the
kernels pin down.
"""

from repro.bench.harness import (
    BACKEND_COMPARE_KERNELS,
    GUARD_BUDGET,
    BenchContext,
    Kernel,
    KernelResult,
    percentile,
    run_backend_compare,
    run_kernels,
    run_overhead_guard,
)
from repro.bench.kernels import REGISTRY, kernel_names
from repro.bench.schema import (
    COMPARE_SCHEMA_ID,
    COMPARE_SCHEMA_VERSION,
    SCHEMA_ID,
    SCHEMA_VERSION,
    document_from_compare,
    document_from_results,
    validate_compare_document,
    validate_document,
)

__all__ = [
    "BACKEND_COMPARE_KERNELS",
    "BenchContext",
    "COMPARE_SCHEMA_ID",
    "COMPARE_SCHEMA_VERSION",
    "GUARD_BUDGET",
    "Kernel",
    "KernelResult",
    "REGISTRY",
    "SCHEMA_ID",
    "SCHEMA_VERSION",
    "document_from_compare",
    "document_from_results",
    "kernel_names",
    "percentile",
    "run_backend_compare",
    "run_kernels",
    "run_overhead_guard",
    "validate_compare_document",
    "validate_document",
]
