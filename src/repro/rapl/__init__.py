"""AMD's RAPL implementation: a counter-based *model*, not a measurement.

Two halves:

* :mod:`repro.rapl.estimator` — the power model AMD's SMU firmware runs
  (per the §III-C description: critical-path monitors, supply monitors,
  thermal diodes feeding a model).  Deliberately blind to DRAM power and
  operand data — those blind spots are the paper's §VII findings.
* :mod:`repro.rapl.msrs` — the MSR-visible energy counters: package and
  per-core domains (no DRAM domain), 2^-16 J units, 32-bit wrap, 1 ms
  update cadence.
"""

from repro.rapl.estimator import RaplEstimator
from repro.rapl.msrs import RaplMsrs

__all__ = ["RaplEstimator", "RaplMsrs"]
