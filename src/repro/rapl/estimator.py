"""The SMU's internal power *model* (what RAPL reports).

AMD slides (§III-C) describe the Zen estimator as a model over ">1300
critical path monitors, 48 on-die high speed power supply monitors, 20
thermal diodes, [and] 9 high speed droop detectors" — i.e. activity and
environment sensors, not a power measurement.  The paper's §VII findings
pin down what such a model misses; this estimator bakes in exactly those
structural gaps:

* **No DRAM term.**  "No DRAM domain is available" and "the energy
  consumption of memory accesses ... is not fully captured" — the package
  domain includes only a small fabric/queue activity term per GB/s, far
  below the true DIMM power.
* **No operand term.**  Activity counters count *events*, not bit flips,
  so operand Hamming weight is invisible except through the thermal
  diodes: a leakage term proportional to package temperature leaks a tiny
  , strongly-overlapping signal into the readings (Fig 10b).
* **Per-core core domain** (unlike Intel's package-wide pp0) and a
  package domain adding shared uncore activity (Fig 9b's structure).
"""

from __future__ import annotations

from repro.power.calibration import CALIBRATION, Calibration
from repro.topology.components import Core, Package
from repro.units import ghz


class RaplEstimator:
    """Computes the modelled power that feeds the RAPL counters."""

    #: Model coefficients (W per V^2*f[GHz] per event-rate unit), chosen
    #: so FIRESTARTER reads ~170 W/package (§V-E) while the structural
    #: gaps above remain.  The load/store term scales with *dispatch*
    #: activity (ls ports busy x fraction of peak issue) — a stalled
    #: streaming loop generates few events, which is precisely why the
    #: model under-charges memory-bound work.    # model choice
    ALPHA_ACTIVE = 0.02
    ALPHA_THREAD = 0.15
    ALPHA_IPC = 0.01
    ALPHA_FP = 0.66
    ALPHA_LS = 1.87
    #: Peak issue width used to normalize dispatch activity.
    PEAK_IPC = 4.0
    #: C1/C2 residual core power in the model (W).
    GATED_CORE_W = 0.02
    #: Package uncore base (W) and per-GB/s fabric activity term.
    UNCORE_BASE_W = 13.0
    UNCORE_PER_GBS_W = 0.10
    #: L3 activity term per active core with L3 traffic.
    UNCORE_L3_W = 0.15
    #: Thermal-diode leakage terms (the only channel through which data-
    #: dependent power is faintly visible, §VII-B).
    PKG_LEAK_W_PER_K = 0.015
    CORE_LEAK_W_PER_K = 0.0005

    def __init__(self, calibration: Calibration = CALIBRATION) -> None:
        self.cal = calibration

    # --- core domain -------------------------------------------------------

    def core_power_w(self, core: Core, temp_c: float | None = None) -> float:
        """Modelled power of one core (the per-core RAPL core domain)."""
        cal = self.cal
        smt = sum(1 for t in core.threads if t.is_active)
        if smt == 0:
            power = self.GATED_CORE_W
        else:
            wl = next(t.workload for t in core.threads if t.is_active)
            v = cal.voltage_at(core.applied_freq_hz)
            v2f = v * v * (core.applied_freq_hz / ghz(1))
            ipc = wl.ipc(smt)
            fp = wl.fp_util * (wl.simd_width_bits / 256.0 if wl.simd_width_bits else 0.25)
            dispatch = min(1.0, ipc / self.PEAK_IPC)
            rate = (
                self.ALPHA_ACTIVE
                + self.ALPHA_THREAD * smt
                + self.ALPHA_IPC * ipc
                + self.ALPHA_FP * fp
                + self.ALPHA_LS * wl.ls_util * dispatch
            )
            power = rate * v2f
        if temp_c is not None:
            power += max(0.0, self.CORE_LEAK_W_PER_K * (temp_c - cal.reference_temp_c))
        return power

    # --- package domain --------------------------------------------------------

    def package_power_w(
        self,
        pkg: Package,
        temp_c: float | None = None,
        *,
        dram_traffic_gbs: float = 0.0,
    ) -> float:
        """Modelled package power (the RAPL package domain).

        ``dram_traffic_gbs`` is the *activity* the fabric monitors see —
        the model charges a token amount per GB/s, nowhere near the true
        DIMM power (that is the Fig 9a gap).
        """
        cores = sum(self.core_power_w(core) for core in pkg.cores())
        l3_active = sum(
            self.UNCORE_L3_W
            for core in pkg.cores()
            for t in core.threads
            if t.is_active and t.workload is not None and t.workload.l3_util > 0.3
        )
        uncore = self.UNCORE_BASE_W + self.UNCORE_PER_GBS_W * dram_traffic_gbs + l3_active
        power = cores + uncore
        if temp_c is not None:
            power += max(
                0.0, self.PKG_LEAK_W_PER_K * (temp_c - self.cal.reference_temp_c)
            )
        return power
