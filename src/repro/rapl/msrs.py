"""RAPL MSR counters: units, wrap-around, and the 1 ms update cadence.

The §VII update-rate measurement ("We measured an update rate of 1 ms for
RAPL by polling the MSRs") works against this module: between update
ticks the counter value is frozen; each tick deposits the energy
accumulated since the last one, quantized to 2^-16 J units, into a 32-bit
wrapping register.
"""

from __future__ import annotations

from repro.errors import MsrError
from repro.power.calibration import CALIBRATION, Calibration
from repro.units import (
    NS_PER_S,
    RAPL_COUNTER_WRAP,
    RAPL_ENERGY_UNIT_J,
)


def encode_rapl_power_unit() -> int:
    """The RAPL_PWR_UNIT MSR value: ESU field (bits 12:8) = 16 -> 2^-16 J."""
    power_unit = 3  # 1/8 W (unused by the paper's readouts)
    energy_unit = 16  # 2^-16 J
    time_unit = 10  # 2^-10 s
    return power_unit | (energy_unit << 8) | (time_unit << 16)


class _EnergyCounter:
    """One wrapping 32-bit energy accumulator."""

    __slots__ = ("raw", "_fraction_j")

    def __init__(self) -> None:
        self.raw = 0
        self._fraction_j = 0.0

    def deposit(self, energy_j: float) -> None:
        """Add energy; sub-unit residue carries to the next deposit."""
        if energy_j < 0:
            raise MsrError(0, f"negative energy deposit {energy_j}")
        total = self._fraction_j + energy_j
        units = int(total / RAPL_ENERGY_UNIT_J)
        self._fraction_j = total - units * RAPL_ENERGY_UNIT_J
        self.raw = (self.raw + units) % RAPL_COUNTER_WRAP

    def joules(self) -> float:
        return self.raw * RAPL_ENERGY_UNIT_J


class RaplMsrs:
    """Per-package and per-core energy counters with a 1 ms update grid."""

    def __init__(self, n_packages: int, n_cores: int, calibration: Calibration = CALIBRATION) -> None:
        self.cal = calibration
        self.pkg = [_EnergyCounter() for _ in range(n_packages)]
        self.core = [_EnergyCounter() for _ in range(n_cores)]
        #: Simulation time of the last completed update tick.
        self.last_update_ns = 0

    # --- updates -----------------------------------------------------------

    def tick(self, pkg_powers_w: list[float], core_powers_w: list[float], now_ns: int) -> None:
        """One update: deposit power x elapsed into every counter."""
        dt_s = (now_ns - self.last_update_ns) / NS_PER_S
        if dt_s < 0:
            raise MsrError(0, "RAPL tick moving backwards in time")
        for counter, p in zip(self.pkg, pkg_powers_w):
            counter.deposit(p * dt_s)
        for counter, p in zip(self.core, core_powers_w):
            counter.deposit(p * dt_s)
        self.last_update_ns = now_ns

    def advance_bulk(
        self,
        pkg_energy_j: list[float],
        core_energy_j: list[float],
        duration_ns: int,
    ) -> None:
        """Batch path: deposit a whole measurement interval at once.

        Used by the steady-state experiment fast path (DESIGN.md §2.9);
        equivalent to running ``duration/1 ms`` ticks at constant power
        because deposits are additive and quantization residue carries.
        """
        for counter, e in zip(self.pkg, pkg_energy_j):
            counter.deposit(e)
        for counter, e in zip(self.core, core_energy_j):
            counter.deposit(e)
        self.last_update_ns += duration_ns

    # --- readouts -----------------------------------------------------------

    def read_pkg_raw(self, pkg_index: int) -> int:
        """PKG_ENERGY_STAT for a package (frozen between ticks)."""
        return self.pkg[pkg_index].raw

    def read_core_raw(self, core_index: int) -> int:
        """CORE_ENERGY_STAT for a core (frozen between ticks)."""
        return self.core[core_index].raw

    def pkg_joules(self, pkg_index: int) -> float:
        return self.pkg[pkg_index].joules()

    def core_joules(self, core_index: int) -> float:
        return self.core[core_index].joules()
