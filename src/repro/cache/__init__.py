"""Content-addressed result cache for experiment/suite runs.

``ResultCache`` stores the JSON documents produced by
:func:`repro.core.serialize.table_to_dict` keyed by
:func:`~repro.cache.keys.cache_key` — a stable hash of the experiment
name, every :class:`~repro.core.experiment.ExperimentConfig` field, the
package version, and a digest of the package source tree.  Identical
configurations re-use prior results; touching any source file or
version bump invalidates the whole cache implicitly.

See docs/parallelism.md for the key definition and invalidation rules.
"""

from repro.cache.keys import cache_key, config_fingerprint, source_digest
from repro.cache.store import (
    DEFAULT_MAX_BYTES,
    CacheStats,
    ResultCache,
    default_cache_dir,
)

__all__ = [
    "DEFAULT_MAX_BYTES",
    "CacheStats",
    "ResultCache",
    "cache_key",
    "config_fingerprint",
    "default_cache_dir",
    "source_digest",
]
