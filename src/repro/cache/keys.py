"""Content-addressed cache keys for experiment results.

A cached suite entry is only valid while *everything* that could change
its output is unchanged.  The key therefore hashes four ingredients:

* the experiment name (the ``SUITE`` registry entry);
* every field of the :class:`~repro.core.experiment.ExperimentConfig`
  (seed, scale, interval, SKU, package count);
* the package version string;
* a digest over the package's own source tree, so editing any model or
  experiment invalidates previous results without a manual flush.

The source digest walks every ``*.py`` file under the installed
``repro`` package in sorted path order and hashes paths plus contents;
it is computed once per process and memoized (the tree is ~100 small
files, a few milliseconds of I/O).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any

import repro


def config_fingerprint(config: Any) -> dict[str, Any]:
    """The cache-relevant identity of an experiment configuration."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return dataclasses.asdict(config)
    if isinstance(config, dict):
        return dict(config)
    raise TypeError(  # EXC001: programming error, mirrors stdlib semantics
        f"cannot fingerprint configuration of type {type(config).__name__}"
    )


_SOURCE_DIGEST: str | None = None


def source_digest() -> str:
    """Digest of the installed ``repro`` package's Python sources."""
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is None:
        root = os.path.dirname(os.path.abspath(repro.__file__))
        hasher = hashlib.sha256()
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                rel = os.path.relpath(path, root)
                hasher.update(rel.encode())
                hasher.update(b"\0")
                with open(path, "rb") as fh:
                    hasher.update(fh.read())
                hasher.update(b"\0")
        _SOURCE_DIGEST = hasher.hexdigest()
    return _SOURCE_DIGEST


def cache_key(
    experiment: str,
    config: Any,
    *,
    version: str | None = None,
    source: str | None = None,
) -> str:
    """The content address of one (experiment, config, code) result.

    ``version`` and ``source`` default to the live package; tests pass
    explicit values to pin keys without touching the real tree.
    """
    payload = {
        "experiment": str(experiment),
        "config": config_fingerprint(config),
        "version": repro.__version__ if version is None else version,
        "source": source_digest() if source is None else source,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()
