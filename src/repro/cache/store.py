"""Disk-backed result cache with an LRU-evicting index.

Layout under the cache root (default ``~/.cache/repro-zen2``, override
with ``REPRO_CACHE_DIR``)::

    objects/<key[:2]>/<key>.json   one cached JSON document per key
    index.json                     {"seq": int, "entries": {key: {size, seq}}}

Every write lands via a same-directory temp file plus ``os.replace`` so
readers never observe a torn document, and a crashed writer leaves at
worst an orphaned ``*.tmp.<pid>`` file: the next eviction sweep (or
``clear()``) removes any such file older than ``TMP_SWEEP_AGE_S``.  The
age window keeps the sweep from racing a live writer that is mid-store
under a different pid.  The index records a monotonically increasing
access sequence per entry; when the object store exceeds ``max_bytes``
the lowest-sequence (least recently used) entries are evicted first.

Multiple processes may share one cache root (``run_suite`` workers, the
:mod:`repro.service` daemon's thread pool, concurrent CLI runs): every
index read-modify-write happens under an exclusive ``fcntl`` lock on
``index.lock``, so concurrent writers cannot lose each other's entries
— without it, eviction accounting drifts and objects leak past
``max_bytes``.  Object writes themselves need no lock: they are
content-addressed, so two writers racing on one key write identical
bytes.

The cache is an optimization layer, never an oracle: any I/O or decode
problem on the read path degrades to a miss, and the caller recomputes.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX hosts
    fcntl = None  # type: ignore[assignment]

from repro.errors import CacheError

#: Default size cap for the object store (bytes).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Orphaned ``*.tmp.<pid>`` files older than this are removed by the
#: eviction sweep.  Generous on purpose: a live writer holds its temp
#: file for milliseconds, so an hour-old one is a crashed writer's.
TMP_SWEEP_AGE_S = 3600.0

_ENV_VAR = "REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-zen2``."""
    env = os.environ.get(_ENV_VAR)
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(xdg, "repro-zen2")


@dataclass
class CacheStats:
    """Hit/miss/latency counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    get_s: float = 0.0
    put_s: float = 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": int(self.hits),
            "misses": int(self.misses),
            "stores": int(self.stores),
            "evictions": int(self.evictions),
            "hit_rate": float(self.hit_rate),
            "get_s": float(self.get_s),
            "put_s": float(self.put_s),
        }

    def render(self) -> str:
        return (
            f"cache: {self.hits} hit / {self.misses} miss "
            f"({100 * self.hit_rate:.0f}%), {self.stores} stored, "
            f"{self.evictions} evicted, "
            f"lookup {1e3 * self.get_s:.1f} ms, store {1e3 * self.put_s:.1f} ms"
        )


@dataclass
class _IndexEntry:
    size: int
    seq: int


@dataclass
class _Index:
    seq: int = 0
    entries: dict[str, _IndexEntry] = field(default_factory=dict)


class ResultCache:
    """Content-addressed JSON document store with LRU size capping."""

    def __init__(
        self,
        root: str | None = None,
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        if max_bytes <= 0:
            raise CacheError(f"max_bytes must be positive, got {max_bytes}")
        self.root = os.path.abspath(root or default_cache_dir())
        self.max_bytes = int(max_bytes)
        self.stats = CacheStats()
        self._objects_dir = os.path.join(self.root, "objects")
        self._index_path = os.path.join(self.root, "index.json")
        self._lock_path = os.path.join(self.root, "index.lock")
        self._obs = None

    def attach_obs(self, obs) -> None:
        """Mirror :class:`CacheStats` into a :class:`repro.obs.Obs` registry
        as live metrics (hit/miss counters, store/eviction counters,
        get/put latency histograms)."""
        from repro.obs import effective_obs

        obs = effective_obs(obs)
        if obs is None:
            return
        metrics = obs.metrics
        help_lookups = "Result-cache lookups by outcome"
        self._obs_hits = metrics.counter(
            "cache.lookups", help_lookups, "lookups", result="hit"
        )
        self._obs_misses = metrics.counter(
            "cache.lookups", help_lookups, "lookups", result="miss"
        )
        self._obs_stores = metrics.counter(
            "cache.stores", "Documents stored in the result cache", "stores"
        )
        self._obs_evictions = metrics.counter(
            "cache.evictions", "Objects evicted by the LRU size cap", "objects"
        )
        self._obs_get_s = metrics.histogram(
            "cache.get_latency_s", "get() wall latency", "s"
        )
        self._obs_put_s = metrics.histogram(
            "cache.put_latency_s", "put() wall latency", "s"
        )
        self._obs = obs

    # --- public API --------------------------------------------------------

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached document for ``key``, or ``None`` on a miss.

        A hit refreshes the entry's LRU sequence; any unreadable or
        corrupt object degrades to a miss (and drops the stale index
        entry) rather than raising.
        """
        t0 = time.perf_counter()  # lint: disable=DET001 (host-side cache latency accounting)
        try:
            doc = self._read_object(key)
        finally:
            dt = time.perf_counter() - t0  # lint: disable=DET001 (host-side cache latency accounting)
            self.stats.get_s += dt
            if self._obs is not None:
                self._obs_get_s.observe(dt)
        if doc is None:
            self.stats.misses += 1
            if self._obs is not None:
                self._obs_misses.inc()
            return None
        self.stats.hits += 1
        if self._obs is not None:
            self._obs_hits.inc()
        self._touch(key)
        return doc

    def put(self, key: str, doc: dict[str, Any]) -> None:
        """Store ``doc`` under ``key`` atomically and update the index."""
        t0 = time.perf_counter()  # lint: disable=DET001 (host-side cache latency accounting)
        try:
            path = self._object_path(key)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            blob = json.dumps(doc, sort_keys=True, indent=2) + "\n"
            self._atomic_write(path, blob)
            with self._index_update() as index:
                index.seq += 1
                index.entries[key] = _IndexEntry(size=len(blob), seq=index.seq)
                self._evict(index)
            self.stats.stores += 1
            if self._obs is not None:
                self._obs_stores.inc()
        finally:
            dt = time.perf_counter() - t0  # lint: disable=DET001 (host-side cache latency accounting)
            self.stats.put_s += dt
            if self._obs is not None:
                self._obs_put_s.observe(dt)

    def contains(self, key: str) -> bool:
        """Whether ``key`` has a stored object (no stats, no LRU touch)."""
        return os.path.exists(self._object_path(key))

    def size_bytes(self) -> int:
        """Total size of all indexed objects."""
        index = self._load_index()
        return sum(e.size for e in index.entries.values())

    def keys(self) -> list[str]:
        """All indexed keys, least recently used first."""
        index = self._load_index()
        return sorted(index.entries, key=lambda k: index.entries[k].seq)

    def clear(self) -> None:
        """Drop every object and reset the index."""
        with self._index_update() as index:
            for key in list(index.entries):
                self._remove_object(key)
            index.entries.clear()
        self._sweep_orphan_tmp()

    # --- internals ---------------------------------------------------------

    @contextmanager
    def _index_update(self) -> Iterator[_Index]:
        """Load-mutate-save the index under the cross-process lock.

        The index must be (re-)loaded *inside* the critical section:
        loading before the lock would re-introduce the lost-update race
        this lock exists to close.
        """
        with self._index_lock():
            index = self._load_index()
            yield index
            self._save_index(index)

    @contextmanager
    def _index_lock(self) -> Iterator[None]:
        if fcntl is None:  # pragma: no cover - non-POSIX hosts
            yield
            return
        os.makedirs(self.root, exist_ok=True)
        fd = os.open(self._lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)  # closing the fd releases the flock

    def _object_path(self, key: str) -> str:
        return os.path.join(self._objects_dir, key[:2], f"{key}.json")

    def _read_object(self, key: str) -> dict[str, Any] | None:
        path = self._object_path(key)
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            self._drop_entry(key)
            return None
        if not isinstance(doc, dict):
            self._drop_entry(key)
            return None
        return doc

    def _atomic_write(self, path: str, blob: str) -> None:
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except OSError as err:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise CacheError(f"cannot write cache object {path}: {err}") from err

    def _touch(self, key: str) -> None:
        with self._index_update() as index:
            entry = index.entries.get(key)
            if entry is None:
                # Object exists but predates the index (or the index was
                # lost): adopt it so eviction accounting stays truthful.
                try:
                    size = os.path.getsize(self._object_path(key))
                except OSError:
                    return
                entry = _IndexEntry(size=size, seq=0)
                index.entries[key] = entry
            index.seq += 1
            entry.seq = index.seq

    def _drop_entry(self, key: str) -> None:
        with self._index_update() as index:
            index.entries.pop(key, None)

    def _remove_object(self, key: str) -> None:
        try:
            os.unlink(self._object_path(key))
        except OSError:
            pass

    def _evict(self, index: _Index) -> None:
        total = sum(e.size for e in index.entries.values())
        if total <= self.max_bytes:
            return
        self._sweep_orphan_tmp()
        for key in sorted(index.entries, key=lambda k: index.entries[k].seq):
            if total <= self.max_bytes or len(index.entries) == 1:
                break
            total -= index.entries[key].size
            del index.entries[key]
            self._remove_object(key)
            self.stats.evictions += 1
            if self._obs is not None:
                self._obs_evictions.inc()

    def _sweep_orphan_tmp(self) -> None:
        """Remove stale ``*.tmp.<pid>`` files a crashed writer left behind.

        Only files older than :data:`TMP_SWEEP_AGE_S` go — a younger one
        may belong to a writer that is mid-``os.replace`` right now.
        """
        cutoff = time.time() - TMP_SWEEP_AGE_S  # lint: disable=DET001 (host-side file-age housekeeping)
        for dirpath, _, filenames in os.walk(self.root):
            for filename in filenames:
                if ".tmp." not in filename:
                    continue
                path = os.path.join(dirpath, filename)
                try:
                    if os.path.getmtime(path) < cutoff:
                        os.unlink(path)
                except OSError:  # pragma: no cover - raced another sweep
                    pass

    def _load_index(self) -> _Index:
        try:
            with open(self._index_path) as fh:
                raw = json.load(fh)
            entries = {
                str(key): _IndexEntry(size=int(e["size"]), seq=int(e["seq"]))
                for key, e in raw.get("entries", {}).items()
            }
            return _Index(seq=int(raw.get("seq", 0)), entries=entries)
        except (OSError, ValueError, KeyError, TypeError):
            return _Index()

    def _save_index(self, index: _Index) -> None:
        os.makedirs(self.root, exist_ok=True)
        raw = {
            "seq": index.seq,
            "entries": {
                key: {"size": e.size, "seq": e.seq}
                for key, e in sorted(index.entries.items())
            },
        }
        self._atomic_write(self._index_path, json.dumps(raw, sort_keys=True))
