"""repro — reproduction of "Energy Efficiency Aspects of the AMD Zen 2
Architecture" (Schöne et al., IEEE CLUSTER 2021).

The package provides a behavioural simulator of the Zen 2 "Rome"
power-management architecture (:class:`repro.machine.Machine`) plus the
paper's measurement methodology (:mod:`repro.core`), reproducing every
figure and table of the paper's evaluation (see DESIGN.md and
EXPERIMENTS.md).

Quick start::

    from repro import Machine
    from repro.workloads import FIRESTARTER

    m = Machine("EPYC 7502", seed=42)
    m.os.set_all_frequencies(2.5e9)
    m.os.run(FIRESTARTER, m.os.all_cpus())
    m.preheat()
    rec = m.measure(10.0)
    print(f"AC power: {rec.ac_mean_w:.1f} W, RAPL: {rec.rapl_pkg_total_w:.1f} W")
"""

from repro.machine import Machine, MeasurementRecord, Quirks
from repro.iodie.fclk import FclkMode
from repro.power.calibration import CALIBRATION, Calibration
from repro.topology.skus import SKU, SKUS, sku_by_name

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "MeasurementRecord",
    "Quirks",
    "FclkMode",
    "CALIBRATION",
    "Calibration",
    "SKU",
    "SKUS",
    "sku_by_name",
    "__version__",
]
