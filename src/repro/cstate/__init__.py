"""C-states (idle power states), §VI of the paper.

* :mod:`repro.cstate.states` — the three states of the test system
  (C0 active, C1 clock-gate via mwait, C2 via the C-state base-address
  I/O port) with their ACPI-reported properties.
* :mod:`repro.cstate.controller` — requested vs. effective state
  resolution, core clock gating, the whole-system deep-sleep criterion,
  and the §VI-B offline-thread anomaly.
* :mod:`repro.cstate.wakeup` — wake-up latency model (Fig 8).
"""

from repro.cstate.states import CState, CSTATES, cstate_by_name, deeper, depth_of
from repro.cstate.controller import CStateController
from repro.cstate.package import (
    PackageSleepResolver,
    PackageSleepState,
    SystemSleepReport,
    XgmiLinkState,
)
from repro.cstate.wakeup import WakeupModel

__all__ = [
    "CState",
    "CSTATES",
    "cstate_by_name",
    "deeper",
    "depth_of",
    "CStateController",
    "PackageSleepResolver",
    "PackageSleepState",
    "SystemSleepReport",
    "XgmiLinkState",
    "WakeupModel",
]
