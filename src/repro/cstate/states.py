"""C-state definitions for the test system (§VI).

The paper's machine exposes three states (OS numbering): C0 (active), C1
(entered with monitor/mwait) and C2 (entered through I/O address 0x814 in
the C-state base-address range, §III-B).  ACPI reports transition
latencies of 1 µs and 400 µs — the latter wildly pessimistic versus the
measured 20–25 µs — and useless power values (UINT_MAX for C0, 0 for the
idle states), "which cannot contribute towards an informed selection".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CStateError
from repro.units import us

#: The value ACPI reports as C0 "power" on the test system.
UINT_MAX = 2**32 - 1

#: C-state base I/O-port address (C-state address range, §III-B/§VI).
CSTATE_BASE_IO_ADDRESS = 0x813
#: C2 is entered by reading base+1 (the paper names IO address 0x814).
C2_IO_ADDRESS = 0x814


@dataclass(frozen=True)
class CState:
    """One idle state as presented to the OS."""

    name: str
    depth: int
    entry_method: str  # "active" | "mwait" | "ioport"
    acpi_latency_ns: int
    acpi_power_w: float  # the (useless) ACPI-reported value
    #: True when entering gates the core clock (counters halt, §VI-A).
    gates_core_clock: bool


CSTATES: tuple[CState, ...] = (
    CState("C0", 0, "active", 0, float(UINT_MAX), gates_core_clock=False),
    CState("C1", 1, "mwait", us(1), 0.0, gates_core_clock=True),
    CState("C2", 2, "ioport", us(400), 0.0, gates_core_clock=True),
)

_BY_NAME = {c.name: c for c in CSTATES}
_DEPTH = {c.name: c.depth for c in CSTATES}


def cstate_by_name(name: str) -> CState:
    """Look up a C-state by its OS name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise CStateError(f"unknown C-state {name!r}") from None


def depth_of(name: str) -> int:
    """Numeric depth of a state name (C0=0 < C1=1 < C2=2)."""
    try:
        return _DEPTH[name]
    except KeyError:
        raise CStateError(f"unknown C-state {name!r}") from None


def deeper(a: str, b: str) -> str:
    """The deeper of two states."""
    return a if depth_of(a) >= depth_of(b) else b


def shallower(a: str, b: str) -> str:
    """The shallower of two states."""
    return a if depth_of(a) <= depth_of(b) else b
