"""Package- and system-level sleep states (§III-C, §VI-A).

Burd et al. (cited in §III-C) describe a package C-state **PC6** "in
which the CPU power plane can be brought to a low voltage when there are
no active CPU cores", an I/O-die low-power state in which "most of the
IO and memory interfaces are disabled", and the possibility to lower the
inter-socket xGMI link width.

The paper's measurement (§VI-A) pins down the entry criterion on Rome:
"There appears to be only one criterion for deep package sleep states:
All threads of all packages must be in the deepest sleep state."  That
is, the two sockets sleep *together* — the xGMI link needs both ends —
which is why a single C1 thread anywhere costs the full +81.2 W.

This module makes those states explicit objects so the power model and
experiments can interrogate *why* the system is (not) sleeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.cstate.controller import CStateController
from repro.cstate.states import depth_of
from repro.topology.components import SystemTopology


class PackageSleepState(Enum):
    """Per-package deep-sleep level."""

    ACTIVE = "active"  # at least one core clock running
    CORES_GATED = "cores_gated"  # all cores C1+, package awake
    PC6 = "pc6"  # CPU power plane at low voltage


class XgmiLinkState(Enum):
    """Inter-socket link width (Burd et al.)."""

    FULL_WIDTH = "x16"
    REDUCED_WIDTH = "x8"
    LOW_POWER = "lp"


@dataclass(frozen=True)
class SystemSleepReport:
    """Why the system is or is not in its deepest sleep."""

    in_deep_sleep: bool
    package_states: tuple[PackageSleepState, ...]
    xgmi_state: XgmiLinkState
    io_dies_low_power: bool
    #: Logical CPUs preventing deep sleep (empty when sleeping).
    blockers: tuple[int, ...]


class PackageSleepResolver:
    """Derives package/system sleep levels from effective C-states."""

    def __init__(self, topo: SystemTopology, cstates: CStateController) -> None:
        self.topo = topo
        self.cstates = cstates

    def package_state(self, pkg_index: int) -> PackageSleepState:
        """Sleep level of one package, considered in isolation."""
        pkg = self.topo.packages[pkg_index]
        depths = [depth_of(t.effective_cstate) for t in pkg.threads()]
        if any(d == 0 for d in depths):
            return PackageSleepState.ACTIVE
        if all(d >= 2 for d in depths) and self.cstates.system_in_deep_sleep():
            # PC6 additionally requires the *system* criterion (§VI-A):
            # both packages' threads must be in the deepest state.
            return PackageSleepState.PC6
        return PackageSleepState.CORES_GATED

    def blockers(self) -> tuple[int, ...]:
        """CPUs whose state is shallower than C2 (deep-sleep blockers)."""
        return tuple(
            t.cpu_id
            for t in self.topo.threads()
            if depth_of(t.effective_cstate) < 2
        )

    def xgmi_state(self) -> XgmiLinkState:
        """Link width follows the deepest common package state."""
        if len(self.topo.packages) < 2:
            return XgmiLinkState.LOW_POWER
        states = [self.package_state(i) for i in range(len(self.topo.packages))]
        if all(s is PackageSleepState.PC6 for s in states):
            return XgmiLinkState.LOW_POWER
        if all(s is not PackageSleepState.ACTIVE for s in states):
            return XgmiLinkState.REDUCED_WIDTH
        return XgmiLinkState.FULL_WIDTH

    def report(self) -> SystemSleepReport:
        """Full explanation of the current sleep situation."""
        states = tuple(
            self.package_state(i) for i in range(len(self.topo.packages))
        )
        deep = all(s is PackageSleepState.PC6 for s in states)
        return SystemSleepReport(
            in_deep_sleep=deep,
            package_states=states,
            xgmi_state=self.xgmi_state(),
            io_dies_low_power=deep,
            blockers=self.blockers(),
        )

    def apply_to_io_dies(self) -> None:
        """Propagate the low-power flag onto the I/O-die objects."""
        deep = self.report().in_deep_sleep
        for pkg in self.topo.packages:
            pkg.io_die.low_power = deep
