# lint: disable-file=UNIT001 — analytic latency model: fractional nanoseconds
# by design (distribution parameters, not event-engine timestamps).
"""Wake-up latency model (§VI-C, Fig 8).

Measured behaviour reproduced:

* C1 wake is dominated by a core-clock-speed-dependent component —
  ~1 µs at 2.2/2.5 GHz, 1.5 µs at 1.5 GHz.
* C2 wake is 20–25 µs, far below the ACPI-reported 400 µs; it has a fixed
  part (power-gate ramp) plus a clocked part.
* Remote wake-ups (caller on the other socket) add only ~1 µs.
* Distributions show outliers "attributed to the measurement, which runs
  on the same resources as the test workload" — modelled as a small
  probability of an inflated sample.
* The requested state is not always the realized one: package-level
  sleep would add latency, but an active caller prevents package sleep
  (§VI-C), so these paths never trigger in the caller/callee setup.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CStateError
from repro.power.calibration import CALIBRATION, Calibration
from repro.units import NS_PER_S


class WakeupModel:
    """Samples wake-up latencies for a (state, frequency, locality) tuple."""

    def __init__(self, calibration: Calibration = CALIBRATION, rng: np.random.Generator | None = None) -> None:
        self.cal = calibration
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def nominal_latency_ns(self, state: str, freq_hz: float, *, remote: bool = False) -> float:
        """Deterministic centre of the latency distribution."""
        cal = self.cal
        if state == "C1":
            lat = cal.c1_wake_fixed_ns + cal.c1_wake_cycles * NS_PER_S / freq_hz
        elif state == "C2":
            lat = cal.c2_wake_fixed_ns + cal.c2_wake_cycles * NS_PER_S / freq_hz
        elif state == "C0":
            # Callee polling in C0: only the signalling cost remains.
            lat = 300.0
        else:
            raise CStateError(f"unknown C-state {state!r}")
        if remote:
            lat += cal.remote_wake_extra_ns
        return lat

    def entry_latency_ns(self, state: str, freq_hz: float) -> float:
        """Time to *enter* an idle state (Ilsche et al. [6] companion
        quantity to the wake-up latency): instruction path plus state
        save; clock-speed dependent like the exit."""
        cal = self.cal
        if state == "C1":
            return cal.c1_entry_cycles * NS_PER_S / freq_hz
        if state == "C2":
            return cal.c2_entry_fixed_ns + cal.c2_entry_cycles * NS_PER_S / freq_hz
        if state == "C0":
            return 0.0
        raise CStateError(f"unknown C-state {state!r}")

    def sample_entry_ns(self, state: str, freq_hz: float, n: int = 1) -> np.ndarray:
        """Entry-latency samples with the usual measurement jitter."""
        centre = self.entry_latency_ns(state, freq_hz)
        jitter = self.rng.normal(1.0, self.cal.wake_jitter_rel_sigma, size=n)
        return centre * np.clip(jitter, 0.85, None)

    def sample_ns(self, state: str, freq_hz: float, *, remote: bool = False, n: int = 1) -> np.ndarray:
        """Draw ``n`` latency samples including measurement perturbation."""
        centre = self.nominal_latency_ns(state, freq_hz, remote=remote)
        jitter = self.rng.normal(1.0, self.cal.wake_jitter_rel_sigma, size=n)
        samples = centre * np.clip(jitter, 0.85, None)
        # Outlier tail: the measurement infrastructure occasionally
        # perturbs a sample (Fig 8 outliers).
        outliers = self.rng.random(n) < self.cal.wake_outlier_prob
        scales = 1.0 + self.rng.exponential(self.cal.wake_outlier_scale, size=n)
        samples = np.where(outliers, samples * scales, samples)
        return samples
