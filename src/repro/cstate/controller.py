"""C-state resolution: requested states -> effective states -> gating.

Reproduced findings (§VI):

* An idle hardware thread enters the deepest *enabled* state the OS
  requests; with C2 disabled in sysfs it falls back to C1.
* A core is clock-gated when **both** threads are in C1 or deeper
  (the counters of C1 cores do not advance, §VI-A).
* The system reaches its deep-sleep power level only when **all threads
  of all packages** are in the deepest state — "There appears to be only
  one criterion for deep package sleep states" (§VI-A).  A single C1
  thread anywhere costs the full +81.2 W wake penalty.
* **Offline-thread anomaly (§VI-B):** offlining a hardware thread can
  leave it parked in C1 rather than C2; power stays at the C1 level
  "as long as the disabled hardware threads are offline.  Only an
  explicit enabling of the disabled threads will fix this behavior."
  The anomaly is a quirk flag (default on, as observed on Rome) so the
  Intel-like behaviour can be compared.
"""

from __future__ import annotations

from repro.cstate.states import depth_of
from repro.topology.components import HardwareThread, SystemTopology


class CStateController:
    """Maintains requested/effective idle states across the topology."""

    def __init__(
        self,
        topo: SystemTopology,
        *,
        offline_parks_in_c1: bool = True,
    ) -> None:
        self.topo = topo
        #: §VI-B quirk: offlined threads are elevated to C1.
        self.offline_parks_in_c1 = offline_parks_in_c1
        #: Per-cpu set of *disabled* idle states (sysfs
        #: ``cpuidle/stateN/disable``).  C0 cannot be disabled.
        self._disabled: dict[int, set[str]] = {}
        #: Optional cpuidle governor (set by the machine); when present,
        #: idle threads enter the governor's selection rather than
        #: blindly the deepest enabled state.
        self.governor = None
        #: Optional zero-argument callback fired after every
        #: :meth:`refresh` (the machine hooks this to invalidate its
        #: ``state_version``-keyed power-model caches — effective C-state
        #: changes are power-model inputs).
        self.on_change = None

    # --- sysfs-backed configuration -----------------------------------------

    def disable_state(self, cpu_id: int, name: str) -> None:
        """Disable an idle state for one logical CPU (sysfs write 1)."""
        depth_of(name)  # validate
        if name == "C0":
            raise ValueError("C0 cannot be disabled")  # EXC001: argument validation, test-pinned
        self._disabled.setdefault(cpu_id, set()).add(name)
        self.refresh()

    def enable_state(self, cpu_id: int, name: str) -> None:
        """Re-enable an idle state (sysfs write 0)."""
        depth_of(name)
        self._disabled.get(cpu_id, set()).discard(name)
        self.refresh()

    def is_disabled(self, cpu_id: int, name: str) -> bool:
        return name in self._disabled.get(cpu_id, set())

    def deepest_enabled(self, cpu_id: int) -> str:
        """Deepest state the OS may request on this CPU."""
        for name in ("C2", "C1"):
            if not self.is_disabled(cpu_id, name):
                return name
        return "C0"

    # --- resolution -----------------------------------------------------------

    def refresh(self) -> None:
        """Recompute requested/effective states for every thread."""
        for thread in self.topo.threads():
            self._resolve_thread(thread)
        if self.on_change is not None:
            self.on_change()

    def _resolve_thread(self, thread: HardwareThread) -> None:
        if not thread.online:
            # sysfs offline: the OS no longer schedules on the thread.
            if self.offline_parks_in_c1:
                # The Rome/Linux interaction the paper observed: the
                # offlined thread sits in C1, blocking system sleep.
                thread.requested_cstate = "C1"
                thread.effective_cstate = "C1"
            else:
                thread.requested_cstate = "C2"
                thread.effective_cstate = "C2"
            return
        if thread.workload is not None:
            thread.requested_cstate = "C0"
            thread.effective_cstate = "C0"
            return
        requested = self.deepest_enabled(thread.cpu_id)
        if self.governor is not None:
            requested = self.governor.select(thread.cpu_id, requested)
        thread.requested_cstate = requested
        thread.effective_cstate = requested

    # --- aggregate queries -----------------------------------------------------

    def core_gated(self, core) -> bool:
        """True when both threads idle at C1+ (core clock gates, §VI-A)."""
        return all(depth_of(t.effective_cstate) >= 1 for t in core.threads)

    def system_in_deep_sleep(self) -> bool:
        """The §VI-A criterion: every thread of every package in C2."""
        return all(
            depth_of(t.effective_cstate) >= 2 for t in self.topo.threads()
        )

    def count_by_effective_state(self) -> dict[str, int]:
        """Histogram of effective thread states (for experiment tables)."""
        counts = {"C0": 0, "C1": 0, "C2": 0}
        for t in self.topo.threads():
            counts[t.effective_cstate] += 1
        return counts

    def cores_by_shallowest_state(self) -> dict[str, int]:
        """Number of cores whose shallowest thread state is C0/C1/C2."""
        counts = {"C0": 0, "C1": 0, "C2": 0}
        for core in self.topo.cores():
            counts[core.deepest_common_cstate_is] += 1
        return counts
