"""A statistical reconstruction of the 2021/07 Green500 list (Fig 1).

Substitution note (DESIGN.md §4): Fig 1 is context, not a mechanism — it
plots the efficiency distribution of x86 systems per processor
architecture from the public Green500 list.  The list itself is external
data we cannot ship verbatim; instead we embed per-architecture
efficiency *bands* (median / quartiles / count) transcribed from the
published 2021/07 figures and synthesize entries matching those bands.
The figure's message — Zen 2/Zen 3 systems lead the x86 efficiency field
— is carried by the band parameters, not by the sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ArchitectureBand:
    """Summary of one architecture's efficiency distribution (GFlops/W)."""

    architecture: str
    vendor: str
    n_systems: int
    q1: float
    median: float
    q3: float


#: Architectures with more than five systems in the 2021/07 list (the
#: figure's inclusion criterion), efficiency in GFlops/W.
ARCHITECTURE_BANDS: tuple[ArchitectureBand, ...] = (
    ArchitectureBand("Zen 3 (Milan)", "AMD", 12, 2.9, 3.3, 3.8),
    ArchitectureBand("Zen 2 (Rome)", "AMD", 58, 2.2, 2.6, 3.1),
    ArchitectureBand("Cascade Lake", "Intel", 122, 1.7, 2.1, 2.5),
    ArchitectureBand("Skylake-SP", "Intel", 108, 1.4, 1.8, 2.2),
    ArchitectureBand("Broadwell", "Intel", 48, 1.0, 1.3, 1.6),
    ArchitectureBand("Haswell", "Intel", 19, 0.9, 1.1, 1.4),
)


@dataclass(frozen=True)
class Green500Entry:
    """One synthesized list entry."""

    rank: int
    architecture: str
    vendor: str
    efficiency_gflops_w: float


def synthesize_green500(seed: int = 0) -> list[Green500Entry]:
    """Draw entries matching each architecture's band.

    Sampling uses a log-normal fitted to (q1, median, q3); draws outside
    [q1 - 2 IQR, q3 + 2 IQR] are clipped so a single tail sample cannot
    distort the figure.
    """
    rng = np.random.default_rng(seed)
    entries: list[Green500Entry] = []
    for band in ARCHITECTURE_BANDS:
        mu = np.log(band.median)
        # For a log-normal, (ln q3 - ln q1) = 2 * 0.6745 * sigma.
        sigma = (np.log(band.q3) - np.log(band.q1)) / (2 * 0.6745)
        values = rng.lognormal(mu, sigma, size=band.n_systems)
        iqr = band.q3 - band.q1
        values = np.clip(values, band.q1 - 2 * iqr, band.q3 + 2 * iqr)
        entries.extend(
            Green500Entry(0, band.architecture, band.vendor, float(v)) for v in values
        )
    entries.sort(key=lambda e: -e.efficiency_gflops_w)
    return [
        Green500Entry(i + 1, e.architecture, e.vendor, e.efficiency_gflops_w)
        for i, e in enumerate(entries)
    ]


def architecture_summary(entries: list[Green500Entry]) -> dict[str, dict[str, float]]:
    """Per-architecture quartiles of a synthesized list (the Fig 1 boxes)."""
    out: dict[str, dict[str, float]] = {}
    for band in ARCHITECTURE_BANDS:
        vals = np.array(
            [e.efficiency_gflops_w for e in entries if e.architecture == band.architecture]
        )
        out[band.architecture] = {
            "n": float(vals.size),
            "q1": float(np.percentile(vals, 25)),
            "median": float(np.percentile(vals, 50)),
            "q3": float(np.percentile(vals, 75)),
            "min": float(vals.min()),
            "max": float(vals.max()),
        }
    return out


def amd_leads_x86(entries: list[Green500Entry]) -> bool:
    """The figure's headline: AMD architectures top the x86 medians."""
    summary = architecture_summary(entries)
    amd_medians = [
        summary[b.architecture]["median"] for b in ARCHITECTURE_BANDS if b.vendor == "AMD"
    ]
    intel_medians = [
        summary[b.architecture]["median"] for b in ARCHITECTURE_BANDS if b.vendor == "Intel"
    ]
    return min(amd_medians) > max(intel_medians)
