"""Embedded datasets."""

from repro.datasets.green500 import (
    ARCHITECTURE_BANDS,
    Green500Entry,
    architecture_summary,
    synthesize_green500,
)

__all__ = [
    "Green500Entry",
    "ARCHITECTURE_BANDS",
    "synthesize_green500",
    "architecture_summary",
]
