"""Core Performance Boost (§III-B, §V-E).

AMD discloses no server-side implementation details; for desktop parts,
Precision Boost raises the clock in 25 MHz steps "as part of the SenseMI
technology" while power, current and thermal headroom remain.  The model
follows that description:

* boost applies only to cores whose *request* is the nominal P0
  frequency (a userspace request below nominal is a hard cap, as on the
  real machine);
* the boost ceiling is the SKU's single-core boost clock, stepped down
  by ``BOOST_STEP_HZ`` as more cores are active (all-core boost is far
  below single-core boost);
* the EDC and PPT loops still bind: the boosted target is fed through
  the same :class:`~repro.smu.edc.EdcManager` cap, which reproduces the
  paper's §V-E observation that enabling boost has "almost no influence
  on throughput, frequency and power consumption" under FIRESTARTER —
  the EDC limit, not the boost table, decides the operating point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.components import Package
from repro.topology.skus import SKU
from repro.units import PSTATE_FREQ_STEP_HZ, snap_to_pstate_grid


@dataclass(frozen=True)
class BoostDecision:
    """Boost evaluation for one package."""

    active_cores: int
    ceiling_hz: float


class BoostModel:
    """Opportunistic frequency ceiling above nominal."""

    #: Ceiling reduction per additional active core (25 MHz grid x 4).
    PER_CORE_STEP_HZ = 4 * PSTATE_FREQ_STEP_HZ
    #: Thermal guard: no boost above this package temperature.
    MAX_BOOST_TEMP_C = 80.0

    def __init__(self, sku: SKU, enabled: bool = False) -> None:
        self.sku = sku
        self.enabled = enabled

    def ceiling_hz(self, pkg: Package, temp_c: float | None = None) -> BoostDecision:
        """The highest clock boost would allow on ``pkg`` right now."""
        active = sum(1 for core in pkg.cores() if core.has_active_thread)
        if not self.enabled or active == 0:
            return BoostDecision(active, self.sku.nominal_freq_hz)
        if temp_c is not None and temp_c > self.MAX_BOOST_TEMP_C:
            return BoostDecision(active, self.sku.nominal_freq_hz)
        ceiling = self.sku.boost_freq_hz - (active - 1) * self.PER_CORE_STEP_HZ
        ceiling = max(self.sku.nominal_freq_hz, snap_to_pstate_grid(ceiling))
        return BoostDecision(active, ceiling)

    def boosted_target_hz(
        self, requested_hz: float, decision: BoostDecision
    ) -> float:
        """Boost only lifts requests already at (or above) nominal."""
        if not self.enabled:
            return requested_hz
        if requested_hz < self.sku.nominal_freq_hz - 1e3:
            return requested_hz  # explicit userspace cap wins
        return max(requested_hz, decision.ceiling_hz)
