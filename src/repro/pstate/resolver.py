"""Effective-frequency resolution.

Implements the three frequency-coupling findings of §V:

1. **Sibling vote (§V-A)** — a core's clock honours the *maximum*
   requested frequency over its hardware threads, even when a thread is
   idle or offline.  ("Still, the frequency of the core is defined by the
   offline thread.")
2. **CCX coupling penalty (§V-C, Table I)** — cores requesting a lower
   frequency than the CCX maximum lose a small amount of *mean* applied
   frequency.  The paper observes the effect without disclosing a
   mechanism, so this is a calibrated empirical model: the SMU dips the
   slower core's clock around the shared-L3 domain's transitions, and the
   time-average shortfall grows with the neighbour's clock.
3. **L3 clock follows the fastest core (§V-C, Fig 4)** — "an increased
   L3-cache frequency that is defined by the highest clocked core in the
   CCX."

The resolver is *pure*: it reads topology state and returns per-core
targets; the transition engine / the machine's settle step apply them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.calibration import CALIBRATION, Calibration
from repro.topology.components import CCX, Core
from repro.units import snap_to_pstate_grid


@dataclass(frozen=True)
class ResolvedCoreFrequency:
    """Resolution result for one core.

    ``target_hz`` is the P-state the SMU will program (grid-snapped);
    ``observable_mean_hz`` is the time-averaged clock a perf-counter
    observer sees (target minus the CCX coupling penalty).
    """

    core_index: int
    target_hz: float
    observable_mean_hz: float
    limited_by_edc: bool = False


class FrequencyResolver:
    """Computes per-core frequency targets and observable means."""

    def __init__(self, calibration: Calibration = CALIBRATION, *,
                 offline_threads_vote: bool = True) -> None:
        self.cal = calibration
        #: The §V-A quirk: offline/idle threads still vote.  Exposed as a
        #: switch so the ablation bench can quantify its impact.
        self.offline_threads_vote = offline_threads_vote

    # --- per-core request --------------------------------------------------

    def core_request_hz(self, core: Core) -> float:
        """The core's requested clock: max over hardware-thread votes.

        With ``offline_threads_vote`` (the Rome behaviour) every thread's
        cpufreq request counts.  With the switch off (Intel-like
        behaviour, per §V-A "we never observed this behavior on Intel
        processors") only threads that are online and not in a deep idle
        state vote; if none qualify, the core parks at the minimum vote.
        """
        votes = []
        for thread in core.threads:
            if self.offline_threads_vote:
                votes.append(thread.requested_freq_hz)
            else:
                if thread.online and thread.is_active:
                    votes.append(thread.requested_freq_hz)
        if not votes:
            votes = [min(t.requested_freq_hz for t in core.threads)]
        return max(votes)

    # --- CCX-level resolution ----------------------------------------------

    def resolve_ccx(
        self,
        ccx: CCX,
        *,
        edc_cap_hz: float | None = None,
        boost_ceiling_hz: float | None = None,
        nominal_hz: float | None = None,
    ) -> list[ResolvedCoreFrequency]:
        """Resolve all cores of one CCX.

        ``edc_cap_hz`` is an optional package-level frequency cap from the
        EDC manager (§V-E); it applies to cores with active threads.
        ``boost_ceiling_hz`` lifts active cores whose request is at (or
        above) ``nominal_hz`` — Core Performance Boost; the EDC cap is
        applied *after* the lift, so a binding EDC limit makes boost a
        no-op (the §V-E observation).
        """
        requests = {core.global_index: self.core_request_hz(core) for core in ccx.cores}
        if boost_ceiling_hz is not None and nominal_hz is not None:
            for core in ccx.cores:
                req = requests[core.global_index]
                if core.has_active_thread and req >= nominal_hz - 1e3:
                    requests[core.global_index] = max(req, boost_ceiling_hz)
        resolved = []
        for core in ccx.cores:
            req = requests[core.global_index]
            limited = False
            if edc_cap_hz is not None and core.has_active_thread and req > edc_cap_hz:
                req = edc_cap_hz
                limited = True
            target = snap_to_pstate_grid(req)
            others = [
                requests[c.global_index]
                for c in ccx.cores
                if c is not core and self._core_clock_runs(c)
            ]
            max_other = max(others, default=0.0)
            if edc_cap_hz is not None:
                max_other = min(max_other, edc_cap_hz)
            mean = target - self._coupling_penalty_hz(target, max_other)
            resolved.append(
                ResolvedCoreFrequency(
                    core_index=core.global_index,
                    target_hz=target,
                    observable_mean_hz=mean,
                    limited_by_edc=limited,
                )
            )
        return resolved

    def l3_target_hz(self, ccx: CCX) -> float:
        """L3 clock: the highest clock among cores whose clock runs.

        If every core in the CCX is gated (C1/C2), the L3 parks at the
        architecture floor (the PPR names 400 MHz as the minimum
        supported L3 frequency, §III-C).
        """
        running = [
            self.core_request_hz(core) for core in ccx.cores if self._core_clock_runs(core)
        ]
        if not running:
            return 400e6
        return snap_to_pstate_grid(max(running))

    # --- helpers -------------------------------------------------------------

    @staticmethod
    def _core_clock_runs(core: Core) -> bool:
        """True when the core clock is not gated (some thread in C0)."""
        return any(
            t.online and t.effective_cstate == "C0" for t in core.threads
        ) or core.has_active_thread

    def _coupling_penalty_hz(self, set_hz: float, max_other_hz: float) -> float:
        """Table I penalty plus the small diagonal shortfalls."""
        cal = self.cal
        if max_other_hz > set_hz + 1e6:
            return cal.ccx_penalty_hz(set_hz, max_other_hz)
        # Diagonal / below: tiny shortfalls the paper's Table I shows even
        # without faster neighbours (1 MHz at 2.2/2.5 with equal others,
        # 3 MHz at 2.5 GHz with slower others).
        set_g = round(set_hz / 1e9, 3)
        if max_other_hz > 1e6 and abs(max_other_hz - set_hz) <= 1e6:
            for f_g, short_mhz in cal.ccx_equal_shortfall_mhz:
                if abs(set_g - f_g) < 1e-6:
                    return short_mhz * 1e6
            return 0.0
        if set_g == 2.5 and 0 < max_other_hz < set_hz:
            if max_other_hz < 2.0e9:
                return cal.set_2g5_slow_others_shortfall_mhz * 1e6
            return cal.set_2g5_mid_others_shortfall_mhz * 1e6
        return 0.0
