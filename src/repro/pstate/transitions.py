"""The SMU frequency-transition state machine (§V-B, Fig 3).

Mechanism reproduced from the paper's measurements:

* Requests do not take effect immediately.  The SMU runs a fixed
  **update interval of 1 ms**; a pending request is picked up at the next
  slot boundary.  Because requests arrive at a random phase relative to
  the grid, the waiting time is U(0, 1 ms).
* Executing the transition takes **~390 µs** (down) / **~360 µs** (up) —
  "likely caused by communication between the SMUs".  Total latency is
  therefore uniformly distributed over [390, 1390] µs for down-switches,
  which is exactly the Fig 3 histogram.
* After the frequency settles the **voltage keeps settling for several
  milliseconds**.  If a new request returns to the previous frequency
  while the voltage is still in flight and the voltage gap is small
  (2.2 <-> 2.5 GHz), the switch completes almost instantaneously (1 µs);
  down-switches in that window can complete in as little as 160 µs.  The
  effect disappears with waits >= 5 ms — matching the paper's caveat.

Implementation note: slot boundaries live on an absolute 1 ms grid
(``now // period`` arithmetic) and boundary events are scheduled *only
while requests are pending* — a settled machine costs zero events, which
keeps the steady-state measurement path fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.power.calibration import CALIBRATION, Calibration
from repro.sim.engine import Simulator
from repro.topology.components import Core


@dataclass
class TransitionRecord:
    """Bookkeeping for the most recent transition of a core."""

    requested_at_ns: int = -1
    started_at_ns: int = -1
    completed_at_ns: int = -1
    from_hz: float = 0.0
    to_hz: float = 0.0
    fast_return: bool = False

    @property
    def latency_ns(self) -> int:
        """Request-to-completion latency of the last finished transition."""
        if self.completed_at_ns < 0 or self.requested_at_ns < 0:
            return -1
        return self.completed_at_ns - self.requested_at_ns


@dataclass
class _CoreContext:
    pending_target_hz: float | None = None
    requested_at_ns: int = -1
    in_flight: bool = False
    #: Frequency applied before the currently settling transition.
    previous_hz: float = 0.0
    #: Time at which the voltage of the last transition finishes settling.
    voltage_settled_at_ns: int = 0
    record: TransitionRecord = field(default_factory=TransitionRecord)


class TransitionEngine:
    """Event-driven frequency transitions on top of a :class:`Simulator`."""

    def __init__(
        self,
        sim: Simulator,
        calibration: Calibration = CALIBRATION,
        *,
        on_applied=None,
    ) -> None:
        self.sim = sim
        self.cal = calibration
        self.on_applied = on_applied
        self._contexts: dict[int, _CoreContext] = {}
        self._pending_cores: list[Core] = []
        self._boundary_scheduled_for: int = -1

    def _ctx(self, core: Core) -> _CoreContext:
        ctx = self._contexts.get(core.global_index)
        if ctx is None:
            ctx = _CoreContext(previous_hz=core.applied_freq_hz)
            self._contexts[core.global_index] = ctx
        return ctx

    # --- API -----------------------------------------------------------------

    def request(self, core: Core, target_hz: float) -> None:
        """File a frequency request for ``core`` (e.g. a cpufreq write)."""
        ctx = self._ctx(core)
        now = self.sim.now_ns
        if abs(target_hz - core.applied_freq_hz) < 1e3 and not ctx.in_flight:
            ctx.pending_target_hz = None
            return
        ctx.pending_target_hz = target_hz
        ctx.requested_at_ns = now
        core.pending_freq_hz = target_hz

        # Fast-return path (§V-B: "some transitions are executed
        # instantaneously (1 us)"): an *up*-switch back to the previous
        # frequency while that frequency's voltage has not yet dropped
        # away, for a small voltage gap (covers 2.2 -> 2.5 GHz only).
        # Down-switches never take this path — the clock must still be
        # stepped down — they get the partial shortcut in _start instead.
        if (
            not ctx.in_flight
            and target_hz > core.applied_freq_hz
            and now < ctx.voltage_settled_at_ns
            and abs(target_hz - ctx.previous_hz) < 1e3
            and self._voltage_gap(target_hz, core.applied_freq_hz)
            <= self.cal.fast_return_max_dv
        ):
            ctx.in_flight = True
            self.sim.schedule_after(
                self.cal.fast_return_ns,
                lambda c=core: self._complete(c, fast_return=True),
            )
            return

        if core not in self._pending_cores:
            self._pending_cores.append(core)
        self._ensure_boundary()

    def record_of(self, core: Core) -> TransitionRecord:
        """The last transition record for ``core``."""
        return self._ctx(core).record

    def in_flight(self, core: Core) -> bool:
        """True while a transition for ``core`` is executing."""
        return self._ctx(core).in_flight

    def shutdown(self) -> None:
        """Forget pending work (machine teardown)."""
        self._pending_cores.clear()

    # --- internals -------------------------------------------------------------

    def _voltage_gap(self, f_a_hz: float, f_b_hz: float) -> float:
        return abs(self.cal.voltage_at(f_a_hz) - self.cal.voltage_at(f_b_hz))

    def _ensure_boundary(self) -> None:
        """Schedule the next 1 ms grid boundary if not already pending."""
        period = self.cal.smu_slot_period_ns
        next_boundary = (self.sim.now_ns // period + 1) * period
        if self._boundary_scheduled_for == next_boundary:
            return
        self._boundary_scheduled_for = next_boundary
        self.sim.schedule_at(next_boundary, self._slot_boundary)

    def _slot_boundary(self) -> None:
        """A 1 ms SMU slot: start every pending, not-in-flight transition."""
        self._boundary_scheduled_for = -1
        still_waiting: list[Core] = []
        for core in self._pending_cores:
            ctx = self._ctx(core)
            if ctx.pending_target_hz is None:
                continue
            if ctx.in_flight:
                still_waiting.append(core)
                continue
            self._start(core, ctx)
        self._pending_cores = still_waiting
        if self._pending_cores:
            self._ensure_boundary()

    def _start(self, core: Core, ctx: _CoreContext) -> None:
        target = ctx.pending_target_hz
        assert target is not None
        going_up = target > core.applied_freq_hz
        duration = self.cal.transition_up_ns if going_up else self.cal.transition_down_ns
        # Partially-settled shortcut (§V-B, 2.5 -> 2.2 observation): a
        # *down*-switch while the voltage is still on its way (after a
        # fast return it is part-way low already) finishes early, down to
        # the observed 160 us floor.
        now = self.sim.now_ns
        if (
            not going_up
            and now < ctx.voltage_settled_at_ns
            and self._voltage_gap(target, core.applied_freq_hz) <= self.cal.fast_return_max_dv
        ):
            settle_total = self.cal.voltage_settle_ns
            remaining = ctx.voltage_settled_at_ns - now
            progress = 1.0 - remaining / settle_total
            floor = self.cal.partial_transition_min_ns
            duration = max(floor, int(floor + (duration - floor) * progress))
        ctx.in_flight = True
        ctx.record.requested_at_ns = ctx.requested_at_ns
        ctx.record.started_at_ns = now
        ctx.record.from_hz = core.applied_freq_hz
        ctx.record.to_hz = target
        self.sim.schedule_after(duration, lambda c=core: self._complete(c, fast_return=False))

    def _complete(self, core: Core, *, fast_return: bool) -> None:
        ctx = self._ctx(core)
        target = ctx.pending_target_hz
        if target is None:  # pragma: no cover - cancelled mid-flight
            ctx.in_flight = False
            return
        old = core.applied_freq_hz
        core.applied_freq_hz = target
        core.pending_freq_hz = None
        ctx.pending_target_hz = None
        ctx.in_flight = False
        ctx.previous_hz = old
        now = self.sim.now_ns
        if fast_return:
            # The core now runs the higher clock on a partially-dropped
            # voltage that recovers in the background — a down-switch
            # within this window is the paper's 160 us partial case.
            ctx.voltage_settled_at_ns = now + self.cal.voltage_settle_ns
            ctx.record.requested_at_ns = ctx.requested_at_ns
            ctx.record.started_at_ns = now
            ctx.record.from_hz = old
            ctx.record.to_hz = target
        elif target < old:
            # Down-switch: the clock drops first, the voltage trails for
            # several milliseconds — this open window is what makes the
            # return *up*-switch instantaneous (§V-B).
            ctx.voltage_settled_at_ns = now + self.cal.voltage_settle_ns
        else:
            # Up-switch: the voltage led the clock; nothing settles.
            ctx.voltage_settled_at_ns = now
        ctx.record.completed_at_ns = now
        ctx.record.fast_return = fast_return
        if self.on_applied is not None:
            self.on_applied(core, target)
