"""P-states and DVFS.

Three cooperating pieces:

* :mod:`repro.pstate.table` — P-state definitions with family-17h-style
  MSR encoding (frequency on the 25 MHz grid, VID, IddMax).
* :mod:`repro.pstate.resolver` — turns per-thread frequency *requests*
  into per-core *targets* and *observable mean* frequencies, implementing
  the paper's §V-A sibling-vote rule and the §V-C CCX coupling effects.
* :mod:`repro.pstate.transitions` — the SMU transition state machine:
  1 ms update slots, 390/360 µs execution, voltage-settle fast returns
  (§V-B / Fig 3).
"""

from repro.pstate.table import PState, PStateTable, decode_pstate_msr, encode_pstate_msr
from repro.pstate.resolver import FrequencyResolver, ResolvedCoreFrequency
from repro.pstate.transitions import TransitionEngine, TransitionRecord

__all__ = [
    "PState",
    "PStateTable",
    "encode_pstate_msr",
    "decode_pstate_msr",
    "FrequencyResolver",
    "ResolvedCoreFrequency",
    "TransitionEngine",
    "TransitionRecord",
]
