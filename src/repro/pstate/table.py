"""P-state definitions and MSR encoding.

AMD family 17h defines up to eight P-states in MSRs ``C001_0064`` through
``C001_006B`` (§III-B).  Each definition carries a frequency (the core
clock is ``CpuFid * 25 MHz / (CpuDfsId / 8)``; we encode with the divider
fixed at 1, i.e. ``CpuDfsId = 8``, so frequencies are multiples of
25 MHz), a voltage ID and an expected maximum current.  The *P-state
current limit* register reports how many P-states are actually available
(§III-B: "the actual number can be retrieved by polling the P-state
current limit MSR").

The VID-to-volt mapping is not publicly documented (§III-B); we use the
SVI2 convention ``V = 1.55 - 0.00625 * VID`` which is the de-facto
interpretation used by monitoring tools.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PStateError
from repro.units import MHZ, PSTATE_FREQ_STEP_HZ

#: SVI2 voltage step per VID code.
VID_STEP_V = 0.00625
VID_MAX_V = 1.55

# Bit layout (simplified from PPR 55803): we keep the architectural field
# positions for CpuFid/CpuDfsId/CpuVid/IddValue/IddDiv and the enable bit.
_FID_SHIFT, _FID_BITS = 0, 8
_DFSID_SHIFT, _DFSID_BITS = 8, 6
_VID_SHIFT, _VID_BITS = 14, 8
_IDD_VALUE_SHIFT, _IDD_VALUE_BITS = 22, 8
_IDD_DIV_SHIFT, _IDD_DIV_BITS = 30, 2
_ENABLE_BIT = 63


def _field(value: int, shift: int, bits: int) -> int:
    return (value >> shift) & ((1 << bits) - 1)


def volts_to_vid(v: float) -> int:
    """Voltage -> SVI2 VID code (rounded to the nearest step)."""
    if not 0.0 < v <= VID_MAX_V:
        raise PStateError(f"voltage {v} V outside SVI2 range")
    return round((VID_MAX_V - v) / VID_STEP_V)


def vid_to_volts(vid: int) -> float:
    """SVI2 VID code -> voltage."""
    if not 0 <= vid < (1 << _VID_BITS):
        raise PStateError(f"VID {vid} out of range")
    return VID_MAX_V - vid * VID_STEP_V


@dataclass(frozen=True)
class PState:
    """One P-state definition.

    ``idd_max_a`` is the "expected maximum current dissipation of a single
    core" from the definition (§III-B).
    """

    index: int
    freq_hz: float
    voltage_v: float
    idd_max_a: float = 10.0
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise PStateError(f"P{self.index}: frequency must be positive")
        if abs(self.freq_hz / PSTATE_FREQ_STEP_HZ - round(self.freq_hz / PSTATE_FREQ_STEP_HZ)) > 1e-9:
            raise PStateError(
                f"P{self.index}: {self.freq_hz/MHZ:.3f} MHz is not a multiple of 25 MHz"
            )


def encode_pstate_msr(ps: PState) -> int:
    """Encode a :class:`PState` into the 64-bit MSR value."""
    fid = round(ps.freq_hz / PSTATE_FREQ_STEP_HZ)
    if not 0 < fid < (1 << _FID_BITS):
        raise PStateError(f"P{ps.index}: FID {fid} out of range")
    vid = volts_to_vid(ps.voltage_v)
    # IddValue with IddDiv = 0 encodes whole amps (PPR convention).
    idd_value = min(int(round(ps.idd_max_a)), (1 << _IDD_VALUE_BITS) - 1)
    value = 0
    value |= fid << _FID_SHIFT
    value |= 8 << _DFSID_SHIFT  # divider 1.0
    value |= vid << _VID_SHIFT
    value |= idd_value << _IDD_VALUE_SHIFT
    value |= 0 << _IDD_DIV_SHIFT
    if ps.enabled:
        value |= 1 << _ENABLE_BIT
    return value


def decode_pstate_msr(value: int, index: int = 0) -> PState:
    """Decode a 64-bit P-state MSR value back into a :class:`PState`."""
    fid = _field(value, _FID_SHIFT, _FID_BITS)
    dfsid = _field(value, _DFSID_SHIFT, _DFSID_BITS)
    if dfsid == 0:
        raise PStateError(f"P{index}: CpuDfsId of 0 is invalid")
    vid = _field(value, _VID_SHIFT, _VID_BITS)
    idd_value = _field(value, _IDD_VALUE_SHIFT, _IDD_VALUE_BITS)
    freq_hz = fid * PSTATE_FREQ_STEP_HZ / (dfsid / 8)
    return PState(
        index=index,
        freq_hz=freq_hz,
        voltage_v=vid_to_volts(vid),
        idd_max_a=float(idd_value),
        enabled=bool(value >> _ENABLE_BIT & 1),
    )


class PStateTable:
    """The per-machine table of defined P-states (max eight, §III-B)."""

    MAX_PSTATES = 8

    def __init__(self, pstates: list[PState]):
        if not pstates:
            raise PStateError("at least one P-state required")
        if len(pstates) > self.MAX_PSTATES:
            raise PStateError(
                f"at most {self.MAX_PSTATES} P-states supported, got {len(pstates)}"
            )
        # P0 is the highest-performance state by convention.
        ordered = sorted(pstates, key=lambda p: -p.freq_hz)
        self.pstates = [
            PState(i, p.freq_hz, p.voltage_v, p.idd_max_a, p.enabled)
            for i, p in enumerate(ordered)
        ]

    @classmethod
    def from_frequencies(cls, freqs_hz: list[float], voltage_of) -> "PStateTable":
        """Build a table from frequencies using a voltage curve callable."""
        return cls([PState(i, f, voltage_of(f)) for i, f in enumerate(freqs_hz)])

    def __len__(self) -> int:
        return len(self.pstates)

    def __iter__(self):
        return iter(self.pstates)

    @property
    def current_limit(self) -> int:
        """Index of the lowest-performance enabled P-state (the value the
        P-state current limit MSR reports)."""
        enabled = [p.index for p in self.pstates if p.enabled]
        if not enabled:
            raise PStateError("no enabled P-states")
        return max(enabled)

    def frequencies_hz(self) -> list[float]:
        """Enabled frequencies, descending."""
        return [p.freq_hz for p in self.pstates if p.enabled]

    def by_frequency(self, freq_hz: float, tol_hz: float = 1e6) -> PState:
        """Find the P-state matching ``freq_hz``."""
        for p in self.pstates:
            if abs(p.freq_hz - freq_hz) <= tol_hz:
                return p
        raise PStateError(f"no P-state at {freq_hz/MHZ:.0f} MHz")

    def closest_not_above(self, freq_hz: float) -> PState:
        """Highest enabled P-state with frequency <= ``freq_hz``.

        Falls back to the slowest state if ``freq_hz`` is below all of
        them (the SMU never undershoots the bottom of the table).
        """
        candidates = [p for p in self.pstates if p.enabled and p.freq_hz <= freq_hz + 1e-6]
        if candidates:
            return max(candidates, key=lambda p: p.freq_hz)
        return min(
            (p for p in self.pstates if p.enabled), key=lambda p: p.freq_hz
        )
