# lint: disable-file=UNIT001 — analytic latency model: fractional nanoseconds
# by design (model outputs, not event-engine timestamps).
"""Load-to-use latency model (Fig 4, Fig 5 right panel).

The latency of a dependent-load chain decomposes by clock domain:

* **core domain** — L1/L2 lookup and the request path into the L3,
  scaling with the *measured core's* clock;
* **L3 domain** — slice access, scaling with the CCX's L3 clock, which
  follows the fastest core in the CCX (§V-C);
* **I/O die** — Infinity-Fabric hops at fclk, plus an
  asynchronous-crossing penalty when core/fabric/memory domains are not
  frequency-matched (§V-D: why Auto beats fixed P0);
* **DRAM** — a fixed device part plus a MEMCLK-scaled part.

Hardware prefetchers are disabled and huge pages used in the paper's
methodology (§V-C); the model therefore represents raw un-prefetched
access time (there is no prefetch term to disable).
"""

from __future__ import annotations

from repro.iodie.fclk import FclkController
from repro.memory.hierarchy import CacheLevel, by_name
from repro.power.calibration import CALIBRATION, Calibration
from repro.units import NS_PER_S, ghz


class LatencyModel:
    """Computes access latencies in nanoseconds."""

    def __init__(self, calibration: Calibration = CALIBRATION) -> None:
        self.cal = calibration

    # --- on-die ------------------------------------------------------------

    def cache_latency_ns(
        self, level: CacheLevel | str, core_freq_hz: float, l3_freq_hz: float | None = None
    ) -> float:
        """Latency of a hit in ``level`` for a core at ``core_freq_hz``.

        For the L3, ``l3_freq_hz`` is the CCX's L3 clock (defaults to the
        core clock, i.e. a uniformly-clocked CCX).
        """
        if isinstance(level, str):
            level = by_name(level)
        if l3_freq_hz is None:
            l3_freq_hz = core_freq_hz
        lat = level.core_cycles * NS_PER_S / core_freq_hz
        if level.l3_cycles:
            lat += level.l3_cycles * NS_PER_S / l3_freq_hz
        return lat

    def l3_latency_ns(self, core_freq_hz: float, l3_freq_hz: float) -> float:
        """Convenience wrapper for the Fig 4 quantity."""
        return self.cache_latency_ns("L3", core_freq_hz, l3_freq_hz)

    # --- main memory ----------------------------------------------------------

    def dram_latency_ns(
        self,
        core_freq_hz: float,
        fclk_ctrl: FclkController,
        *,
        l3_freq_hz: float | None = None,
        memclk_hz: float | None = None,
    ) -> float:
        """Local-node main-memory latency (Fig 5 right panel).

        Anchors (§V-D text): Auto = 92.0 ns vs fixed P0 = 96.0 ns at the
        default configuration; at the higher DRAM frequency fixed P2 also
        beats fixed P0 thanks to the 2:1 domain match.
        """
        cal = self.cal
        io = fclk_ctrl.io_die
        memclk = io.memclk_hz if memclk_hz is None else memclk_hz
        fclk = fclk_ctrl.fclk_for(fclk_ctrl.mode, memclk)
        if l3_freq_hz is None:
            l3_freq_hz = core_freq_hz

        # Core-side path (L1..L3 miss handling); dominated by constants
        # measured at the nominal core clock, with a small core-clock term.
        core_part = cal.mem_latency_core_path_ns * (
            0.65 + 0.35 * (cal.nominal_freq_hz / core_freq_hz)
        )
        if_part = cal.mem_if_hop_cycles * NS_PER_S / fclk
        dram_part = cal.mem_dram_fixed_ns + cal.mem_dram_clk_cycles * NS_PER_S / memclk
        sync_part = (
            cal.mem_sync_penalty_coeff_ns
            * (ghz(1) / fclk + ghz(1) / memclk)
            * fclk_ctrl.mismatch_factor(memclk)
        )
        return core_part + if_part + dram_part + sync_part
