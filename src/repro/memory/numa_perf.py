# lint: disable-file=UNIT001 — analytic latency model: fractional nanoseconds
# by design (model outputs, not event-engine timestamps).
"""NUMA-mode (NPS) performance model.

The paper's testbed runs "2-Channel Interleaving (per Quadrant)" — NPS4
(§IV) — which is what the Fig 5 numbers assume: memory on one quadrant,
two local channels, one CCD's IF link.  The BIOS alternatives trade
locality for spread:

* **NPS4**: 2 channels per node; lowest local latency; a single node's
  bandwidth ceiling is one quadrant (the paper's 2-core saturation);
* **NPS2**: 4-channel interleave; one extra IF hop for half the
  accesses;
* **NPS1**: 8-channel interleave across the socket; the bandwidth
  ceiling grows to the whole socket but every access averages the
  on-die distance matrix.

This model extends the Fig 5 machinery to those modes so operators can
reason about the bandwidth/latency trade — the paper's future-work
direction ("analyze the memory architecture ... in higher detail").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.iodie.fclk import FclkController
from repro.memory.bandwidth import BandwidthModel, BandwidthResult
from repro.memory.latency import LatencyModel
from repro.power.calibration import CALIBRATION, Calibration
from repro.topology.numa import NumaConfig
from repro.units import NS_PER_S, ghz

#: Extra Infinity-Fabric hops an interleaved access averages, per mode.
#: NPS4 accesses stay on the local switch; NPS1 averages ~1.2 extra hops
#: across the quadrant mesh.
_EXTRA_HOPS = {
    NumaConfig.NPS4: 0.0,
    NumaConfig.NPS2: 0.6,
    NumaConfig.NPS1: 1.2,
}


@dataclass(frozen=True)
class NpsOperatingPoint:
    """Bandwidth/latency summary for one NPS mode and placement."""

    nps: NumaConfig
    n_cores: int
    bandwidth_gbs: float
    limiter: str
    latency_ns: float


class NpsPerformanceModel:
    """Bandwidth and latency across NUMA-per-socket modes."""

    def __init__(self, calibration: Calibration = CALIBRATION) -> None:
        self.cal = calibration
        self.bandwidth = BandwidthModel(calibration)
        self.latency = LatencyModel(calibration)

    # --- bandwidth ---------------------------------------------------------

    def node_bandwidth(
        self,
        nps: NumaConfig,
        n_cores: int,
        core_freq_hz: float,
        fclk_ctrl: FclkController,
    ) -> BandwidthResult:
        """Triad bandwidth against one NUMA node's interleave set.

        The DRAM ceiling scales with the channels in the interleave set
        (2/4/8); the IF ceiling scales with the CCD links that can reach
        it without funnelling through a single switch port (1/2/4).
        """
        channels = 8 // nps.value
        links = max(1, 4 // nps.value)
        io = fclk_ctrl.io_die
        fclk = fclk_ctrl.fclk_for(fclk_ctrl.mode, io.memclk_hz)

        demand = n_cores * self.bandwidth.per_core_gbs(core_freq_hz)
        if_ceiling = links * self.bandwidth.if_link_gbs(fclk)
        dram_ceiling = (channels / 2) * self.bandwidth.quadrant_dram_gbs(io.memclk_hz)
        ceiling = min(if_ceiling, dram_ceiling)
        limiter = "if_link" if if_ceiling <= dram_ceiling else "dram"
        per_core = self.bandwidth.per_core_gbs(core_freq_hz)
        saturating = max(1, int(-(-ceiling // per_core)))
        if demand < ceiling:
            return BandwidthResult(demand, "cores", saturating)
        extra = max(0, n_cores - saturating)
        degradation = max(
            0.5, 1.0 - self.cal.contention_degradation_per_core * extra
        )
        return BandwidthResult(ceiling * degradation, limiter, saturating)

    # --- latency -------------------------------------------------------------

    def local_latency_ns(
        self, nps: NumaConfig, core_freq_hz: float, fclk_ctrl: FclkController
    ) -> float:
        """Average load-to-use latency to the node's interleave set."""
        base = self.latency.dram_latency_ns(core_freq_hz, fclk_ctrl)
        fclk = fclk_ctrl.fclk_for(fclk_ctrl.mode, fclk_ctrl.io_die.memclk_hz)
        hop_ns = self.cal.mem_if_hop_cycles * NS_PER_S / fclk
        return base + _EXTRA_HOPS[nps] * hop_ns

    # --- summary ----------------------------------------------------------------

    def operating_point(
        self,
        nps: NumaConfig,
        n_cores: int,
        fclk_ctrl: FclkController,
        core_freq_hz: float = ghz(2.5),
    ) -> NpsOperatingPoint:
        bw = self.node_bandwidth(nps, n_cores, core_freq_hz, fclk_ctrl)
        lat = self.local_latency_ns(nps, core_freq_hz, fclk_ctrl)
        return NpsOperatingPoint(
            nps=nps,
            n_cores=n_cores,
            bandwidth_gbs=bw.bandwidth_gbs,
            limiter=bw.limiter,
            latency_ns=lat,
        )
