"""Memory-hierarchy performance models (§V-C Fig 4, §V-D Fig 5)."""

from repro.memory.hierarchy import CacheLevel, ZEN2_HIERARCHY, level_for_footprint
from repro.memory.latency import LatencyModel
from repro.memory.bandwidth import BandwidthModel, BandwidthResult
from repro.memory.dram import DramConfig, DRAM_CONFIGS

__all__ = [
    "CacheLevel",
    "ZEN2_HIERARCHY",
    "level_for_footprint",
    "LatencyModel",
    "BandwidthModel",
    "BandwidthResult",
    "DramConfig",
    "DRAM_CONFIGS",
]
