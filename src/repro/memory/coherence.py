# lint: disable-file=UNIT001 — analytic latency model: fractional nanoseconds
# by design (model outputs, not event-engine timestamps).
"""Cache-coherence transfer latencies (Molka et al.'s subject matter).

The paper's latency tool comes from Molka et al.'s coherence study; the
paper itself only exercises the local-L3 and local-DRAM paths, but its
future work names "the memory architecture and the influence of power
saving mechanisms on these in higher detail".  This module extends the
latency model to cache-line transfers between cores in the MOESI
protocol sense:

* same CCX: the shared L3 holds the shadow tags — a dirty line moves
  core-to-core at roughly L3 latency;
* same package, different CCX: the request crosses the I/O die (two IF
  hops) and returns through the home L3;
* other package: additionally one xGMI hop each way, whose latency
  depends on the link state (full width, reduced, retrained from low
  power — tying the §VI sleep states to observable memory performance).
"""

from __future__ import annotations

from enum import Enum

from repro.cstate.package import XgmiLinkState
from repro.memory.latency import LatencyModel
from repro.power.calibration import CALIBRATION, Calibration
from repro.units import NS_PER_S, ghz


class LineState(Enum):
    """Simplified MOESI source state of the requested line."""

    MODIFIED = "M"  # dirty in the owner's cache
    SHARED = "S"  # clean copy, home L3 can answer
    INVALID = "I"  # memory access (DRAM path)


#: xGMI per-hop latency by link state (ns).  A low-power link must
#: retrain before the first transfer — tens of microseconds, the
#: memory-side face of the §VI wake costs.
XGMI_HOP_NS = {
    XgmiLinkState.FULL_WIDTH: 45.0,
    XgmiLinkState.REDUCED_WIDTH: 60.0,
    XgmiLinkState.LOW_POWER: 25_000.0,
}


class CoherenceModel:
    """Core-to-core transfer latencies."""

    #: Extra L3-domain cycles for a dirty-line (M) intervention.
    M_STATE_EXTRA_L3_CYCLES = 18.0

    def __init__(self, calibration: Calibration = CALIBRATION) -> None:
        self.cal = calibration
        self.latency = LatencyModel(calibration)

    # --- intra-CCX ---------------------------------------------------------

    def same_ccx_ns(
        self, state: LineState, core_freq_hz: float, l3_freq_hz: float
    ) -> float:
        """Line transfer between cores sharing an L3."""
        base = self.latency.l3_latency_ns(core_freq_hz, l3_freq_hz)
        if state is LineState.MODIFIED:
            base += self.M_STATE_EXTRA_L3_CYCLES * NS_PER_S / l3_freq_hz
        return base

    # --- cross-CCX, same package ---------------------------------------------

    def same_package_ns(
        self,
        state: LineState,
        core_freq_hz: float,
        l3_freq_hz: float,
        fclk_hz: float,
    ) -> float:
        """Transfer crossing the I/O die between two CCXs."""
        base = self.same_ccx_ns(state, core_freq_hz, l3_freq_hz)
        if_hop = self.cal.mem_if_hop_cycles * NS_PER_S / fclk_hz
        return base + 2 * if_hop  # request out, data back

    # --- cross-package ------------------------------------------------------------

    def cross_package_ns(
        self,
        state: LineState,
        core_freq_hz: float,
        l3_freq_hz: float,
        fclk_hz: float,
        xgmi: XgmiLinkState = XgmiLinkState.FULL_WIDTH,
    ) -> float:
        """Transfer to the other socket over xGMI."""
        base = self.same_package_ns(state, core_freq_hz, l3_freq_hz, fclk_hz)
        return base + 2 * XGMI_HOP_NS[xgmi]

    # --- convenience ---------------------------------------------------------------

    def transfer_ns(
        self,
        machine,
        src_cpu: int,
        dst_cpu: int,
        state: LineState = LineState.MODIFIED,
    ) -> float:
        """Transfer latency between two logical CPUs on a live machine."""
        src = machine.topology.thread(src_cpu).core
        dst = machine.topology.thread(dst_cpu).core
        f_core = dst.applied_freq_hz
        l3 = dst.ccx.l3_freq_hz
        if src.ccx is dst.ccx:
            return self.same_ccx_ns(state, f_core, l3)
        fclk = dst.package.io_die.fclk_hz
        if src.package is dst.package:
            return self.same_package_ns(state, f_core, l3, fclk)
        return self.cross_package_ns(
            state, f_core, l3, fclk, machine.sleep.xgmi_state()
        )
