"""STREAM-Triad bandwidth model (Fig 5 left panel).

Reproduced behaviour (§V-D):

* "two cores on one CCX already reach the maximal main memory bandwidth"
  — with the paper's compact thread placement and first-touch policy the
  data lives on one NUMA quadrant, so the ceiling is the min of the CCD's
  Infinity-Fabric link and the quadrant's two DRAM channels;
* "additional cores can lead to performance degradation" — a small
  per-core contention penalty beyond saturation;
* "higher I/O die P-states reduce power consumption but also lower
  memory bandwidth" — the IF-link ceiling scales with fclk;
* "a higher DRAM frequency does not increase memory bandwidth
  significantly" — at fclk P0 the IF link, not DRAM, is the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.iodie.fclk import FclkController
from repro.power.calibration import CALIBRATION, Calibration
from repro.units import ghz


@dataclass(frozen=True)
class BandwidthResult:
    """Outcome of a bandwidth evaluation."""

    bandwidth_gbs: float
    limiter: str  # "cores" | "if_link" | "dram"
    saturating_cores: int


class BandwidthModel:
    """Evaluates achievable Triad bandwidth for a placement."""

    def __init__(self, calibration: Calibration = CALIBRATION) -> None:
        self.cal = calibration

    # --- ceilings ---------------------------------------------------------

    def per_core_gbs(self, core_freq_hz: float, demand_gbs: float | None = None) -> float:
        """A single core's achievable stream bandwidth.

        Mildly frequency-dependent: the core must issue enough outstanding
        misses; at 2.5 GHz the calibrated single-core Triad demand applies.
        """
        base = self.cal.stream_per_core_gbs if demand_gbs is None else demand_gbs
        scale = 0.75 + 0.25 * (core_freq_hz / self.cal.nominal_freq_hz)
        return base * scale

    def if_link_gbs(self, fclk_hz: float) -> float:
        """Per-CCD Infinity-Fabric link ceiling (read+write payload)."""
        return self.cal.if_bytes_per_cycle * (fclk_hz / ghz(1)) * self.cal.if_efficiency

    def quadrant_dram_gbs(self, memclk_hz: float) -> float:
        """Two-channel quadrant DRAM ceiling with stream efficiency."""
        per_channel = 8.0 * 2.0 * (memclk_hz / ghz(1))  # 8 B, DDR
        return 2 * per_channel * self.cal.dram_channel_efficiency

    # --- evaluation ----------------------------------------------------------

    def node_bandwidth_gbs(
        self,
        n_cores: int,
        core_freq_hz: float,
        fclk_ctrl: FclkController,
        *,
        memclk_hz: float | None = None,
        demand_gbs_per_core: float | None = None,
    ) -> BandwidthResult:
        """Bandwidth for ``n_cores`` compactly placed, memory on one node.

        This is the Fig 5 configuration: OpenMP threads placed compactly
        (filling a CCX before spilling to the next), arrays first-touched
        on NUMA node 0.  All traffic therefore converges on quadrant 0's
        two channels through at most one CCD link per CCX.
        """
        if n_cores < 1:
            raise ValueError(f"need at least one core, got {n_cores}")  # EXC001: argument validation
        io = fclk_ctrl.io_die
        memclk = io.memclk_hz if memclk_hz is None else memclk_hz
        fclk = fclk_ctrl.fclk_for(fclk_ctrl.mode, memclk)

        demand = n_cores * self.per_core_gbs(core_freq_hz, demand_gbs_per_core)
        if_ceiling = self.if_link_gbs(fclk)
        dram_ceiling = self.quadrant_dram_gbs(memclk)

        ceiling = min(if_ceiling, dram_ceiling)
        limiter = "if_link" if if_ceiling <= dram_ceiling else "dram"
        per_core = self.per_core_gbs(core_freq_hz, demand_gbs_per_core)
        saturating = max(1, int(-(-ceiling // per_core)))  # ceil division

        if demand < ceiling:
            return BandwidthResult(demand, "cores", saturating)

        # Saturated: contention degrades throughput slightly per extra core
        # beyond the saturation point (§V-D observation).
        extra = max(0, n_cores - saturating)
        degradation = max(
            0.5, 1.0 - self.cal.contention_degradation_per_core * extra
        )
        return BandwidthResult(ceiling * degradation, limiter, saturating)
