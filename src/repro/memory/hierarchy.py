"""Zen 2 cache geometry (§III-A).

Per core: a 4096-op op-cache, 32 KiB L1I, 32 KiB L1D and a unified
512 KiB L2.  Per CCX: 16 MiB of L3 in four 4 MiB slices.  Load-to-use
latencies (in cycles of the owning clock domain) follow AMD's published
figures for Zen 2; the split between core-domain and L3-domain cycles is
the model input for Fig 4 (see :mod:`repro.memory.latency`).
"""

from __future__ import annotations

from dataclasses import dataclass

KIB = 1024
MIB = 1024 * KIB


@dataclass(frozen=True)
class CacheLevel:
    """One level of the on-die hierarchy."""

    name: str
    size_bytes: int
    line_bytes: int
    associativity: int
    #: Load-to-use latency in cycles of the *core* clock domain.
    core_cycles: float
    #: Additional cycles spent in the L3 clock domain (zero for core-private
    #: levels; the L3 runs its own clock, §III-C).
    l3_cycles: float = 0.0
    shared_by: str = "core"  # "core" | "ccx"


ZEN2_HIERARCHY: tuple[CacheLevel, ...] = (
    CacheLevel("L1D", 32 * KIB, 64, 8, core_cycles=4.0),
    CacheLevel("L1I", 32 * KIB, 64, 8, core_cycles=4.0),
    CacheLevel("L2", 512 * KIB, 64, 8, core_cycles=12.0),
    CacheLevel(
        "L3",
        16 * MIB,
        64,
        16,
        core_cycles=26.0,  # request/response path in the core domain
        l3_cycles=13.0,  # slice access in the L3 domain
        shared_by="ccx",
    ),
)

_DATA_LEVELS = tuple(l for l in ZEN2_HIERARCHY if l.name != "L1I")


def by_name(name: str) -> CacheLevel:
    """Look up a level by name."""
    for level in ZEN2_HIERARCHY:
        if level.name == name:
            return level
    raise KeyError(f"no cache level named {name!r}")  # EXC001: dict-like lookup, test-pinned


def level_for_footprint(footprint_bytes: int) -> CacheLevel | None:
    """Smallest data cache level that holds ``footprint_bytes``.

    Returns None when the footprint exceeds the L3 (i.e. a pointer-chase
    over it measures DRAM latency).  This mirrors how the Molka et al.
    benchmark selects the measured level by working-set size.
    """
    for level in _DATA_LEVELS:
        if footprint_bytes <= level.size_bytes:
            return level
    return None
