"""DRAM configurations selectable in the (simulated) BIOS (§IV, §V-D).

The test system defaults to MEMCLK 1.6 GHz (DDR4-3200); the §V-D sweep
additionally uses a lower DRAM frequency.  We expose the two standard
speed grades below 3200 as well, so sweeps can explore more of the space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import ghz


@dataclass(frozen=True)
class DramConfig:
    """One DIMM speed grade."""

    name: str
    memclk_hz: float

    @property
    def transfer_rate_mts(self) -> float:
        """DDR transfer rate in MT/s (two transfers per MEMCLK)."""
        return 2 * self.memclk_hz / 1e6

    @property
    def channel_peak_gbs(self) -> float:
        """Peak bandwidth of one 8-byte channel in GB/s."""
        return 8 * self.transfer_rate_mts / 1e3


DRAM_CONFIGS: dict[str, DramConfig] = {
    "DDR4-3200": DramConfig("DDR4-3200", ghz(1.6)),
    "DDR4-2933": DramConfig("DDR4-2933", ghz(1.4665)),
    "DDR4-2666": DramConfig("DDR4-2666", ghz(1.333)),
    "DDR4-2400": DramConfig("DDR4-2400", ghz(1.2)),
}


def dram_by_name(name: str) -> DramConfig:
    """Look up a speed grade."""
    try:
        return DRAM_CONFIGS[name]
    except KeyError:
        known = ", ".join(sorted(DRAM_CONFIGS))
        raise ConfigurationError(f"unknown DRAM config {name!r}; known: {known}") from None
