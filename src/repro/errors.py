"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so applications can
catch everything from this package with a single ``except`` clause.  The
OS-layer errors deliberately mirror the errno semantics of the real Linux
interfaces they emulate (e.g. writing an invalid value to a sysfs file
raises :class:`SysfsError`, like the ``EINVAL`` a real write would return).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A machine or experiment was configured inconsistently."""


class TopologyError(ConfigurationError):
    """Invalid topology construction or component lookup."""


class PStateError(ReproError):
    """Invalid P-state definition, request, or MSR encoding."""


class CStateError(ReproError):
    """Invalid C-state request or transition."""


class SysfsError(ReproError):
    """Invalid access to the emulated sysfs tree (bad path or value)."""

    def __init__(self, path: str, message: str):
        super().__init__(f"{path}: {message}")
        self.path = path


class MsrError(ReproError):
    """Access to an unimplemented or read-only MSR."""

    def __init__(self, address: int, message: str):
        super().__init__(f"MSR {address:#x}: {message}")
        self.address = address


class SimulationError(ReproError):
    """Discrete-event engine misuse (e.g. scheduling in the past)."""


class MeasurementError(ReproError):
    """An experiment's validation logic rejected its own measurement."""


class WorkloadError(ReproError):
    """Invalid workload descriptor or placement."""


class LintError(ReproError):
    """Static-analysis misuse (bad path, unknown rule id)."""


class SuiteError(ReproError):
    """Invalid suite invocation (e.g. duplicate entry names in ``only``)."""


class ParallelError(ReproError):
    """Invalid parallel-runner invocation (bad job count, duplicate tasks)."""


class CacheError(ReproError):
    """The result cache store is unusable (bad root, corrupt index)."""


class ServiceError(ReproError):
    """The experiment service rejected a request (bad job spec, quota or
    queue budget exhausted, draining).  Subclasses in
    :mod:`repro.service.queue` carry the HTTP status and retry hint."""


class ConvergenceWarning(UserWarning):
    """A fixed-point iteration exited at its sweep cap without reaching
    tolerance (e.g. the power<->temperature coupling in
    :meth:`repro.machine.Machine.preheat` at an extreme calibration)."""


class InvariantViolation(ReproError):
    """A runtime physical invariant was breached (see repro.lint.monitor).

    Carries the individual violation messages so tooling can report all
    breaches of one check batch, not just the first.
    """

    def __init__(self, violations: list[str]):
        super().__init__(
            f"{len(violations)} invariant violation(s): " + "; ".join(violations)
        )
        self.violations = list(violations)
