"""JSON-friendly serialization of experiment artifacts.

Benches archive rendered text; downstream tooling (regression tracking,
notebooks) wants structured data.  Everything here is plain-dict based
so the output feeds ``json.dump`` directly, and loaders round-trip the
types the comparison machinery uses.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

import numpy as np

from repro.core.report import Comparison, ComparisonTable

SCHEMA_VERSION = 1


def comparison_to_dict(comp: Comparison) -> dict[str, Any]:
    """One comparison row as a plain dict.

    Measured values frequently arrive as numpy scalars; everything is
    coerced to builtins so the dict feeds ``json.dump`` directly.
    """
    return {
        "quantity": str(comp.quantity),
        "paper_value": float(comp.paper_value),
        "measured_value": float(comp.measured_value),
        "unit": str(comp.unit),
        "tolerance_rel": float(comp.tolerance_rel),
        "deviation_rel": float(comp.deviation_rel),
        "ok": bool(comp.ok),
    }


def comparison_from_dict(data: dict[str, Any]) -> Comparison:
    """Inverse of :func:`comparison_to_dict` (derived fields ignored)."""
    return Comparison(
        quantity=data["quantity"],
        paper_value=data["paper_value"],
        measured_value=data["measured_value"],
        unit=data.get("unit", ""),
        tolerance_rel=data.get("tolerance_rel", 0.05),
    )


def table_to_dict(table: ComparisonTable) -> dict[str, Any]:
    """A full comparison table, with the aggregate verdict."""
    return {
        "schema_version": SCHEMA_VERSION,
        "experiment": str(table.experiment),
        "all_ok": bool(table.all_ok),
        "comparisons": [comparison_to_dict(c) for c in table.comparisons],
    }


def table_from_dict(data: dict[str, Any]) -> ComparisonTable:
    """Rebuild a :class:`ComparisonTable` from its dict form."""
    if data.get("schema_version", 1) != SCHEMA_VERSION:
        # EXC001: malformed external input; tests pin ValueError
        raise ValueError(
            f"unsupported schema version {data.get('schema_version')!r}"
        )
    table = ComparisonTable(experiment=data["experiment"])
    table.comparisons.extend(
        comparison_from_dict(c) for c in data["comparisons"]
    )
    return table


def series_to_dict(name: str, values, **metadata) -> dict[str, Any]:
    """A named 1-D series (histogram counts, sweep results, ...)."""
    arr = np.asarray(values)
    return {
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "values": arr.tolist(),
        "n": int(arr.size),
        "metadata": metadata,
    }


def canonical_json(data: dict[str, Any]) -> str:
    """A byte-stable encoding: sorted keys, no incidental whitespace.

    Two documents are equal iff their canonical encodings are equal;
    this is the form :func:`document_digest` hashes, and what the
    parallel-equals-serial guarantee (docs/parallelism.md) is stated
    over.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def document_digest(data: dict[str, Any]) -> str:
    """SHA-256 over the canonical encoding of a serialized artifact."""
    return hashlib.sha256(canonical_json(data).encode()).hexdigest()


def dump_json(data: dict[str, Any], path: str) -> None:
    """Write a serialized artifact to disk."""
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_json(path: str) -> dict[str, Any]:
    """Read a serialized artifact."""
    with open(path) as fh:
        return json.load(fh)
