"""§V-B: frequency-transition delay measurement (Fig 3).

The paper's methodology, reimplemented step by step:

1. request the target frequency (cpufreq userspace write);
2. repeatedly run a minimal workload and measure its runtime until the
   expected performance of the target frequency is observed — here the
   polling loop watches the core's applied clock with the workload's
   runtime as the polling quantum, so the measured latency carries the
   same quantization the real benchmark has;
3. validate with 100 further measurements under a 95 % confidence
   interval; discard the sample (and the next) if validation fails;
4. switch back, validate again, wait a random 0–10 ms, repeat.

Each (initial, target) pair is sampled ``n_samples`` times (100 000 in
the paper; the distribution converges far earlier).  Other cores sit at
the minimum frequency, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.analysis.histogram import Histogram
from repro.core.analysis.stats import within_interval
from repro.core.experiment import ExperimentConfig
from repro.core.report import ComparisonTable
from repro.errors import MeasurementError
from repro.units import ghz, ms, ns_to_us, us
from repro.workloads import SPIN

#: Runtime of the paper's "minimal workload" at nominal frequency.  The
#: polling loop's quantization — latency resolution — is this runtime.
MINIMAL_WORKLOAD_NS_AT_NOMINAL = 2_000

#: Give up on a transition after this long (flags a broken sample).
SAMPLE_TIMEOUT_NS = ms(20)


@dataclass
class TransitionDelayResult:
    """Samples and diagnostics for one frequency pair."""

    from_hz: float
    to_hz: float
    latencies_us: np.ndarray
    n_invalid: int
    histogram: Histogram = field(init=False)

    def __post_init__(self) -> None:
        self.histogram = Histogram.from_samples(self.latencies_us, bin_width=25.0)

    @property
    def min_us(self) -> float:
        return float(self.latencies_us.min())

    @property
    def max_us(self) -> float:
        return float(self.latencies_us.max())

    @property
    def mean_us(self) -> float:
        return float(self.latencies_us.mean())


class FrequencyTransitionExperiment:
    """Runs the §V-B methodology on a simulated machine."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()

    # ------------------------------------------------------------------

    def measure_pair(
        self,
        from_hz: float,
        to_hz: float,
        n_samples: int | None = None,
        *,
        min_wait_ms: float = 0.0,
        max_wait_ms: float = 10.0,
    ) -> TransitionDelayResult:
        """Sample the request-to-effect latency for one frequency pair.

        ``min_wait_ms``/``max_wait_ms`` bound the random pause between
        samples; the paper notes the 2.2<->2.5 GHz fast-return effect
        "disappears with random wait times of at least 5 ms", which
        callers reproduce by raising ``min_wait_ms``.
        """
        cfg = self.config
        n = cfg.scaled(100_000) if n_samples is None else n_samples
        machine = cfg.build_machine()
        machine.enable_event_mode()
        rng = machine.rng.child("freq-transition-experiment")

        cpu = 0
        thread = machine.topology.thread(cpu)
        core = thread.core
        # Pin the measured thread's workload; all other cores idle at the
        # minimum frequency (the build default).
        machine.os.run(SPIN, [cpu])
        machine.os.set_frequency(cpu, from_hz)
        self._await_frequency(machine, core, from_hz)
        # Decorrelate the start phase from the SMU slot grid.
        machine.sim.run_for(int(rng.integers(0, ms(1))))

        latencies = np.empty(n, dtype=float)
        n_invalid = 0
        filled = 0
        discard_next = False
        while filled < n:
            # --- forward switch: the measured sample ---
            latency_ns, valid = self._one_switch(machine, cpu, core, to_hz, rng)
            if not valid or discard_next:
                n_invalid += int(not valid)
                discard_next = not valid  # discard this and the next sample
            else:
                latencies[filled] = ns_to_us(latency_ns)
                filled += 1
            # --- return switch + random pause ---
            self._one_switch(machine, cpu, core, from_hz, rng)
            wait_ns = int(rng.uniform(ms(min_wait_ms), ms(max_wait_ms)))
            machine.sim.run_for(wait_ns)

        machine.shutdown()
        return TransitionDelayResult(
            from_hz=from_hz, to_hz=to_hz, latencies_us=latencies, n_invalid=n_invalid
        )

    # ------------------------------------------------------------------

    def _poll_quantum_ns(self, core) -> int:
        """Runtime of the minimal workload at the current clock."""
        scale = ghz(2.5) / core.applied_freq_hz
        return max(1, int(MINIMAL_WORKLOAD_NS_AT_NOMINAL * scale))

    def _one_switch(self, machine, cpu: int, core, target_hz: float, rng) -> tuple[int, bool]:
        """Request ``target_hz`` and poll until performance matches.

        Returns (latency_ns, valid).  The polling loop advances the
        simulator in minimal-workload quanta; detection is therefore
        quantized exactly like the real benchmark's runtime probe.
        """
        sim = machine.sim
        t0 = sim.now_ns
        machine.os.set_frequency(cpu, target_hz)
        quantum = self._poll_quantum_ns(core)
        while abs(core.applied_freq_hz - target_hz) > 1e3:
            sim.run_for(quantum)
            if sim.now_ns - t0 > SAMPLE_TIMEOUT_NS:
                return sim.now_ns - t0, False
            quantum = self._poll_quantum_ns(core)
        latency_ns = sim.now_ns - t0
        # Validation: 100 more performance probes must agree with the
        # target level (95 % CI).  Perf probes carry small jitter.
        probes = target_hz * (1.0 + rng.normal(0.0, 1e-4, size=100))
        valid = within_interval(target_hz, probes)
        sim.run_for(100 * self._poll_quantum_ns(core))
        return latency_ns, valid

    @staticmethod
    def _await_frequency(machine, core, target_hz: float) -> None:
        guard = 0
        while abs(core.applied_freq_hz - target_hz) > 1e3:
            if not machine.sim.step():
                machine.sim.run_for(us(100))
            guard += 1
            if guard > 100_000:
                raise MeasurementError("initial frequency never settled")

    # ------------------------------------------------------------------

    def compare_with_paper(self, result: TransitionDelayResult) -> ComparisonTable:
        """Fig 3 acceptance: U(390, 1390) µs for a down-switch."""
        table = ComparisonTable("Fig 3: frequency transition delay (2.2 -> 1.5 GHz)")
        table.add("min latency", 390.0, result.min_us, "us", tolerance_rel=0.10)
        table.add("max latency", 1390.0, result.max_us, "us", tolerance_rel=0.10)
        table.add("mean latency", 890.0, result.mean_us, "us", tolerance_rel=0.10)
        # The CV of interior bin counts is ~1/sqrt(samples/bins) even for
        # a perfectly uniform source; 0.25 admits >= ~650 samples.
        table.add(
            "uniformity CV (flat histogram)",
            0.0,
            result.histogram.uniformity_cv(),
            "",
            tolerance_rel=0.25,  # absolute via paper_value=0 convention
        )
        return table
