"""Tolerance-aware comparison of serialized artifacts against goldens.

A golden snapshot is a checked-in ``suite_to_dict``/``table_to_dict``
document; :func:`diff_documents` walks an actual document against it and
returns one human-readable line per divergence.  Structure (keys, list
lengths, types) must match exactly; floats are compared with a relative
plus absolute tolerance so a golden survives harmless representation
drift while still pinning every physical quantity.

The simulator is bit-exact at fixed (seed, scale, code), so the default
tolerances are tight — a golden failure almost always means a model
changed behaviour, and the snapshot must be regenerated *deliberately*
(``pytest --update-golden`` / ``make golden``), never loosened to make
a diff disappear.
"""

from __future__ import annotations

import math
from typing import Any

#: Default relative tolerance for float leaves.  Well below any physical
#: acceptance band, far above representation noise.
DEFAULT_RTOL = 1e-9
DEFAULT_ATOL = 0.0


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def diff_documents(
    expected: Any,
    actual: Any,
    *,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
    path: str = "$",
) -> list[str]:
    """Every divergence between ``actual`` and the ``expected`` golden.

    Returns an empty list when the documents match within tolerance;
    otherwise one ``"<json-path>: <what differs>"`` line per divergence
    (all of them, not just the first — a regression report, not an
    assertion).
    """
    if _is_number(expected) and _is_number(actual):
        if math.isclose(
            float(expected), float(actual), rel_tol=rtol, abs_tol=atol
        ):
            return []
        return [f"{path}: {expected!r} != {actual!r} (rtol={rtol}, atol={atol})"]
    if type(expected) is not type(actual):
        return [
            f"{path}: type {type(expected).__name__} != "
            f"{type(actual).__name__} ({expected!r} vs {actual!r})"
        ]
    if isinstance(expected, dict):
        diffs: list[str] = []
        for key in sorted(set(expected) - set(actual)):
            diffs.append(f"{path}.{key}: missing from actual")
        for key in sorted(set(actual) - set(expected)):
            diffs.append(f"{path}.{key}: unexpected key")
        for key in expected:
            if key in actual:
                diffs.extend(
                    diff_documents(
                        expected[key],
                        actual[key],
                        rtol=rtol,
                        atol=atol,
                        path=f"{path}.{key}",
                    )
                )
        return diffs
    if isinstance(expected, list):
        if len(expected) != len(actual):
            return [
                f"{path}: length {len(expected)} != {len(actual)}"
            ]
        diffs = []
        for i, (exp_item, act_item) in enumerate(zip(expected, actual)):
            diffs.extend(
                diff_documents(
                    exp_item, act_item, rtol=rtol, atol=atol, path=f"{path}[{i}]"
                )
            )
        return diffs
    if expected != actual:
        return [f"{path}: {expected!r} != {actual!r}"]
    return []


def render_diff(diffs: list[str], *, limit: int = 40) -> str:
    """Format a diff list for an assertion message, truncated sanely."""
    if not diffs:
        return "documents match"
    shown = diffs[:limit]
    suffix = (
        f"\n... and {len(diffs) - limit} more divergence(s)"
        if len(diffs) > limit
        else ""
    )
    return f"{len(diffs)} divergence(s):\n" + "\n".join(shown) + suffix
