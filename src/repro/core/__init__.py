"""The paper's measurement methodology — the primary contribution.

One module per experiment, each implementing the paper's procedure
against the simulated machine's OS/MSR interfaces and returning a typed
result object.  ``repro.core.report`` compares results against the
paper's published values (consumed by EXPERIMENTS.md and the benches).
"""

from repro.core.experiment import ExperimentConfig
from repro.core.report import Comparison, ComparisonTable
from repro.core.freq_transition import FrequencyTransitionExperiment, TransitionDelayResult
from repro.core.mixed_freq import (
    MixedFrequencyExperiment,
    MixedFrequencyResult,
    L3LatencyResult,
    PAPER_TABLE_I,
)
from repro.core.memperf import (
    MemoryPerformanceExperiment,
    BandwidthSweepResult,
    LatencySweepResult,
)
from repro.core.throughput import ThroughputLimitExperiment, ThroughputResult
from repro.core.idle_power import IdlePowerExperiment, IdleStaircaseResult
from repro.core.cstate_latency import CStateLatencyExperiment, CStateLatencyResult
from repro.core.rapl_quality import RaplQualityExperiment, RaplQualityResult
from repro.core.data_power import DataPowerExperiment, DataPowerResult
from repro.core.rapl_rate import RaplUpdateRateExperiment, RaplRateResult
from repro.core.idle_sibling import IdleSiblingExperiment, IdleSiblingResult
from repro.core.latency_curve import LatencyCurve, LatencyCurveExperiment

__all__ = [
    "ExperimentConfig",
    "Comparison",
    "ComparisonTable",
    "FrequencyTransitionExperiment",
    "TransitionDelayResult",
    "MixedFrequencyExperiment",
    "MixedFrequencyResult",
    "L3LatencyResult",
    "PAPER_TABLE_I",
    "MemoryPerformanceExperiment",
    "BandwidthSweepResult",
    "LatencySweepResult",
    "ThroughputLimitExperiment",
    "ThroughputResult",
    "IdlePowerExperiment",
    "IdleStaircaseResult",
    "CStateLatencyExperiment",
    "CStateLatencyResult",
    "RaplQualityExperiment",
    "RaplQualityResult",
    "DataPowerExperiment",
    "DataPowerResult",
    "RaplUpdateRateExperiment",
    "RaplRateResult",
    "IdleSiblingExperiment",
    "IdleSiblingResult",
    "LatencyCurve",
    "LatencyCurveExperiment",
]
