"""Machine self-check: fast verification of the calibration anchors.

``selfcheck(machine)`` exercises the cheapest observable for each
calibrated mechanism (no sampling loops, no instruments) and returns a
:class:`~repro.core.report.ComparisonTable`.  Intended for users who
modify the calibration or port it to another SKU: a failing row points
at the broken anchor before any full experiment runs.
"""

from __future__ import annotations

from repro.core.report import ComparisonTable
from repro.units import ghz
from repro.workloads import FIRESTARTER, PAUSE_LOOP, SPIN


def selfcheck(machine, *, monitor: bool = True) -> ComparisonTable:
    """Run the anchor checks on a freshly built machine.

    The machine must be idle (newly constructed); the check reconfigures
    it repeatedly and leaves it stopped.  With ``monitor`` (default) an
    :class:`~repro.lint.monitor.InvariantMonitor` rides along in
    collecting mode and its violation count becomes the last table row —
    every selfcheck sweeps the physical invariants too.
    """
    table = ComparisonTable(f"selfcheck: {machine.sku.name}")
    cal = machine.cal
    sanitizer = None
    if monitor:
        # Lazy import: core must not depend on the lint layer at module
        # scope (CON010); the monitor is optional machinery.
        from repro.lint.monitor import InvariantMonitor

        sanitizer = InvariantMonitor(machine, raise_on_violation=False).attach()

    # --- idle floor (Fig 7) -------------------------------------------------
    machine.os.stop()
    table.add(
        "idle floor (all C2)",
        cal.ac_all_c2_w,
        machine.power_model.breakdown(machine).total_w,
        "W",
        0.01,
    )

    # --- wake penalty (§VI-A) -------------------------------------------------
    machine.cstates.disable_state(0, "C2")
    machine.reconfigured()
    table.add(
        "first C1 thread",
        cal.ac_all_c2_w + cal.ac_first_c1_delta_w,
        machine.power_model.breakdown(machine).total_w,
        "W",
        0.01,
    )
    machine.cstates.enable_state(0, "C2")
    machine.reconfigured()

    # --- first active core (Fig 7) ----------------------------------------------
    machine.os.set_all_frequencies(cal.nominal_freq_hz)
    machine.os.run(PAUSE_LOOP, [0])
    table.add(
        "first active thread (pause)",
        cal.ac_first_active_w,
        machine.power_model.breakdown(machine).total_w,
        "W",
        0.01,
    )

    # --- sibling vote (§V-A) ---------------------------------------------------------
    machine.os.run(SPIN, [0])
    machine.os.set_frequency(0, ghz(1.5))
    sibling = machine.topology.thread(0).sibling.cpu_id
    machine.os.set_frequency(sibling, cal.nominal_freq_hz)
    table.add(
        "sibling vote lifts core",
        cal.nominal_freq_hz / 1e9,
        machine.topology.thread(0).core.applied_freq_hz / 1e9,
        "GHz",
        0.001,
    )
    machine.os.set_frequency(sibling, ghz(1.5))
    machine.os.stop()

    # --- EDC operating point (Fig 6) --------------------------------------------------
    machine.os.set_all_frequencies(cal.nominal_freq_hz)
    machine.os.run(FIRESTARTER, machine.os.all_cpus())
    table.add(
        "FIRESTARTER throttle (SMT)",
        cal.firestarter_freq_2t_hz / 1e9,
        machine.topology.thread(0).core.applied_freq_hz / 1e9,
        "GHz",
        0.001,
    )
    machine.os.stop()

    # --- memory latency anchor (Fig 5) -----------------------------------------------------
    fc = machine.fclk_controllers[0]
    table.add(
        "DRAM latency, fclk auto",
        92.0,
        machine.latency_model.dram_latency_ns(cal.nominal_freq_hz, fc),
        "ns",
        0.01,
    )

    # --- transition constants (Fig 3) ----------------------------------------------------------
    table.add(
        "SMU slot period",
        1.0,
        machine.cal.smu_slot_period_ns / 1e6,
        "ms",
        0.0,
    )
    table.add(
        "down-transition execution",
        390.0,
        machine.cal.transition_down_ns / 1e3,
        "us",
        0.0,
    )

    # --- runtime invariants (repro.lint.monitor) -------------------------------
    if sanitizer is not None:
        sanitizer.check()
        sanitizer.detach()
        table.add(
            "invariant violations",
            0.0,
            float(len(sanitizer.violations)),
            "",
            0.0,
        )
    return table
