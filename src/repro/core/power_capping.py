"""Power-capping study (extension of §II-B + §VII).

Rountree et al. (cited §II-B) studied "performance under a
hardware-enforced power bound".  On Zen 2 the bound is enforced by the
SMU against its *modelled* power — the same model §VII shows to be
inaccurate.  This experiment sweeps cap levels and workloads and records
four quantities per point:

* the frequency the PPT loop settles at,
* the modelled (RAPL-visible) package power — always within the cap,
* the *true* package power — which can exceed the cap for workloads the
  model under-states (the §VII findings as an operational risk),
* relative performance (throughput vs. the uncapped run).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.experiment import ExperimentConfig
from repro.units import ghz
from repro.workloads import FIRESTARTER, Workload, instruction_block


@dataclass(frozen=True)
class CapPoint:
    """One (workload, cap) measurement."""

    workload: str
    cap_w: float
    applied_ghz: float
    modelled_pkg_w: float
    true_pkg_w: float
    relative_performance: float

    @property
    def cap_violation_w(self) -> float:
        """True power above the cap (0 when the cap holds at the wall)."""
        return max(0.0, self.true_pkg_w - self.cap_w)


@dataclass
class PowerCappingResult:
    points: list[CapPoint] = field(default_factory=list)

    def of_workload(self, name: str) -> list[CapPoint]:
        return sorted(
            (p for p in self.points if p.workload == name), key=lambda p: p.cap_w
        )

    def worst_violation(self) -> CapPoint:
        return max(self.points, key=lambda p: p.cap_violation_w)


class PowerCappingExperiment:
    """Sweeps PPT limits across workloads."""

    DEFAULT_CAPS_W = (90.0, 110.0, 130.0, 150.0, 170.0)

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()

    def measure(
        self,
        workloads: tuple[Workload, ...] | None = None,
        caps_w: tuple[float, ...] | None = None,
    ) -> PowerCappingResult:
        wls = workloads or (FIRESTARTER, instruction_block("vxorps", 1.0))
        caps = caps_w or self.DEFAULT_CAPS_W
        result = PowerCappingResult()
        for wl in wls:
            baseline = self._run_point(wl, cap_w=None)
            for cap in caps:
                point = self._run_point(wl, cap_w=cap, baseline_ghz=baseline[0])
                result.points.append(
                    CapPoint(
                        workload=wl.name,
                        cap_w=cap,
                        applied_ghz=point[0],
                        modelled_pkg_w=point[1],
                        true_pkg_w=point[2],
                        relative_performance=point[3],
                    )
                )
        return result

    def _run_point(self, wl, cap_w=None, baseline_ghz=None):
        machine = self.config.build_machine()
        machine.os.set_all_frequencies(ghz(2.5))
        machine.os.run(wl, machine.os.all_cpus())
        machine.preheat()
        if cap_w is not None:
            machine.set_power_limit_w(cap_w)
            machine.preheat()
        rec = machine.measure(self.config.interval_s)
        freq_ghz = machine.topology.thread(0).core.applied_freq_hz / 1e9
        modelled = rec.rapl_pkg_w[0]
        true_pkg = machine.power_model.package_power_w(
            machine, machine.topology.packages[0], machine.thermal_state.temps_c
        )
        # throughput ~ ipc x f; ipc is frequency-independent here
        perf = 1.0 if baseline_ghz is None else freq_ghz / baseline_ghz
        machine.shutdown()
        return freq_ghz, modelled, true_pkg, perf
