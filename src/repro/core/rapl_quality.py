"""§VII-A: quality of the integrated power measurement (Fig 9).

Procedure (after Hackenberg et al.): run a grid of configurations —
workload x thread placement x frequency x C-state setting — for 10 s
each; record RAPL package energy, RAPL core energy and the reference AC
power; then examine whether a single function maps RAPL readings to the
reference (it does not: the data is modelled, memory power is missing,
and there is no DRAM domain).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.experiment import ExperimentConfig
from repro.core.report import ComparisonTable
from repro.units import ghz
from repro.workloads import WORKLOAD_SET, Workload


@dataclass(frozen=True)
class RaplQualityPoint:
    """One configuration's readings (a point in Fig 9a/9b)."""

    workload: str
    freq_ghz: float
    n_threads: int
    smt: bool
    ac_w: float
    rapl_pkg_w: float
    rapl_core_w: float

    @property
    def pkg_minus_core_w(self) -> float:
        return self.rapl_pkg_w - self.rapl_core_w


@dataclass
class RaplQualityResult:
    """The full sweep."""

    points: list[RaplQualityPoint] = field(default_factory=list)

    def of_workload(self, name: str) -> list[RaplQualityPoint]:
        return [p for p in self.points if p.workload == name]

    def memory_workloads(self) -> list[RaplQualityPoint]:
        return [
            p
            for p in self.points
            if p.workload in ("memory_read", "memory_write", "stream_triad")
        ]

    def compute_workloads(self) -> list[RaplQualityPoint]:
        return [
            p
            for p in self.points
            if p.workload in ("sqrt", "add_pd", "mul_pd", "vxorps", "mov_rr", "spin")
        ]


class RaplQualityExperiment:
    """Runs the Fig 9 sweep."""

    FREQS_GHZ = (1.5, 2.2, 2.5)

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()

    def measure(
        self,
        workloads: tuple[Workload, ...] = WORKLOAD_SET,
        *,
        placements: tuple[str, ...] = ("all", "half", "one_socket"),
        interval_s: float | None = None,
    ) -> RaplQualityResult:
        cfg = self.config
        dur = cfg.interval_s if interval_s is None else interval_s
        result = RaplQualityResult()
        for wl in workloads:
            for freq in self.FREQS_GHZ:
                for placement in placements:
                    machine = cfg.build_machine()
                    machine.os.set_all_frequencies(ghz(freq))
                    cpus = self._place(machine, placement)
                    if wl.name != "idle":
                        machine.os.run(wl, cpus)
                    machine.preheat()
                    rec = machine.measure(dur)
                    result.points.append(
                        RaplQualityPoint(
                            workload=wl.name,
                            freq_ghz=freq,
                            n_threads=len(cpus),
                            smt=placement == "all",
                            ac_w=rec.ac_mean_w,
                            rapl_pkg_w=float(sum(rec.rapl_pkg_w)),
                            rapl_core_w=float(sum(rec.rapl_core_w)),
                        )
                    )
                    machine.shutdown()
                    if wl.name == "idle":
                        break  # placement is meaningless when idle
        return result

    @staticmethod
    def _place(machine, placement: str) -> list[int]:
        if placement == "all":
            return machine.os.all_cpus()
        if placement == "half":
            return machine.os.first_thread_cpus()
        if placement == "one_socket":
            return [
                t.cpu_id
                for t in machine.topology.packages[0].threads()
            ]
        # EXC001: caller-supplied argument validation; tests pin ValueError
        raise ValueError(f"unknown placement {placement!r}")

    # ------------------------------------------------------------------

    def compare_with_paper(self, result: RaplQualityResult) -> ComparisonTable:
        """Encodes Fig 9's structural findings as indicator quantities."""
        table = ComparisonTable("Fig 9: RAPL vs AC reference")
        pts = result.points
        # (1) RAPL pkg is significantly lower than AC everywhere.
        frac_below = float(np.mean([p.rapl_pkg_w < p.ac_w - 50 for p in pts]))
        table.add("RAPL pkg far below AC (fraction)", 1.0, frac_below, "", 0.0)
        # (2) No single mapping: spread of AC at similar RAPL readings.
        spread = self._mapping_spread(pts)
        table.add("AC spread at fixed RAPL (>25 W)", 1.0, 1.0 if spread > 25.0 else 0.0, "", 0.0)
        # (3) Memory workloads: larger AC-minus-RAPL residual than compute.
        mem = np.mean([p.ac_w - p.rapl_pkg_w for p in result.memory_workloads()])
        comp = np.mean([p.ac_w - p.rapl_pkg_w for p in result.compute_workloads()])
        table.add("memory residual > compute residual", 1.0, 1.0 if mem > comp else 0.0, "", 0.0)
        # (4) Fig 9b: pkg-core is ~constant for compute workloads ...
        comp_gap = [p.pkg_minus_core_w for p in result.compute_workloads()]
        cv = float(np.std(comp_gap) / np.mean(comp_gap))
        table.add("pkg-core stable for compute (CV)", 0.0, cv, "", 0.35)
        # ... while memory/idle gaps differ from the compute gap.
        mem_gap = float(np.mean([p.pkg_minus_core_w for p in result.memory_workloads()]))
        table.add(
            "memory pkg-core gap exceeds compute gap",
            1.0,
            1.0 if mem_gap > np.mean(comp_gap) * 1.3 else 0.0,
            "",
            0.0,
        )
        return table

    @staticmethod
    def _mapping_spread(pts: list[RaplQualityPoint], bin_w: float = 20.0) -> float:
        """Max AC range among points whose RAPL pkg readings are close."""
        best = 0.0
        arr = sorted(pts, key=lambda p: p.rapl_pkg_w)
        for i, p in enumerate(arr):
            acs = [
                q.ac_w
                for q in arr[i:]
                if q.rapl_pkg_w - p.rapl_pkg_w <= bin_w
            ]
            if len(acs) >= 2:
                best = max(best, max(acs) - min(acs))
        return best
