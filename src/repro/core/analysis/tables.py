"""Plain-text table formatting for experiment outputs and benches."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    float_fmt: str = "{:.3f}",
) -> str:
    """Align columns; floats use ``float_fmt``, everything else ``str``."""

    def cell(v: Any) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "  "
    out = [sep.join(h.ljust(w) for h, w in zip(headers, widths))]
    out.append(sep.join("-" * w for w in widths))
    for row in str_rows:
        out.append(sep.join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)
