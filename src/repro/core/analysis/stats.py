"""Statistics used by the measurement methodology.

The frequency-transition methodology (§V-B) validates performance levels
with a 95 % confidence interval; the data-power experiment (§VII-B) uses
empirical cumulative distributions.  Implementations are numpy-only so
the hot loops stay allocation-light.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import MeasurementError

#: Two-sided 97.5 % standard-normal quantile (95 % CI half-width factor).
_Z975 = 1.959963984540054


def mean_std(samples: np.ndarray) -> tuple[float, float]:
    """Sample mean and (ddof=1) standard deviation."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise MeasurementError("no samples")
    if arr.size == 1:
        return float(arr[0]), 0.0
    return float(arr.mean()), float(arr.std(ddof=1))


def confidence_interval(samples: np.ndarray, level: float = 0.95) -> tuple[float, float]:
    """Normal-approximation CI for the mean of ``samples``.

    The methodology takes 100 validation samples per step (§V-B), large
    enough that the normal approximation matches the t interval to well
    under the measurement noise.
    """
    if not 0.0 < level < 1.0:
        raise MeasurementError(f"confidence level must be in (0,1), got {level}")
    mean, std = mean_std(samples)
    n = np.asarray(samples).size
    if n < 2:
        return mean, mean
    # Quantile for the requested level via the error function.
    z = math.sqrt(2.0) * _erfinv(level)
    half = z * std / math.sqrt(n)
    return mean - half, mean + half


def _erfinv(y: float) -> float:
    """Inverse error function (Winitzki's approximation, <2e-3 rel err)."""
    a = 0.147
    ln1my2 = math.log(1.0 - y * y)
    term = 2.0 / (math.pi * a) + ln1my2 / 2.0
    return math.copysign(math.sqrt(math.sqrt(term * term - ln1my2 / a) - term), y)


def within_interval(value: float, samples: np.ndarray, level: float = 0.95) -> bool:
    """The §V-B validation predicate: does ``value`` sit in the CI?"""
    lo, hi = confidence_interval(samples, level)
    return lo <= value <= hi


def ecdf(samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: (sorted values, cumulative probabilities].

    Matches the plotting convention of Fig 10 ("empirical cumulative
    distribution plots ... to avoid smoothing").
    """
    arr = np.sort(np.asarray(samples, dtype=float))
    if arr.size == 0:
        raise MeasurementError("no samples")
    probs = np.arange(1, arr.size + 1) / arr.size
    return arr, probs


def ecdf_quantile(samples: np.ndarray, q: float) -> float:
    """Quantile of the empirical distribution."""
    return float(np.quantile(np.asarray(samples, dtype=float), q))


def ks_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (max ECDF gap).

    The sharp version of the Fig 10 separation claims: ~1.0 for the AC
    distributions of different operand weights (fully separated), small
    for the strongly-overlapping RAPL distributions.
    """
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    if a.size == 0 or b.size == 0:
        raise MeasurementError("ks_distance needs non-empty samples")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def overlap_fraction(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of distribution overlap in [0, 1].

    1.0 = identical supports, 0.0 = fully separated.  Used to state the
    Fig 10 findings quantitatively: AC distributions for different
    operand weights have *no* overlap; RAPL distributions overlap
    strongly.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    lo = max(a.min(), b.min())
    hi = min(a.max(), b.max())
    if hi <= lo:
        return 0.0
    frac_a = float(np.mean((a >= lo) & (a <= hi)))
    frac_b = float(np.mean((b >= lo) & (b <= hi)))
    return min(1.0, (frac_a + frac_b) / 2.0)
