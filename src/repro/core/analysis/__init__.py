"""Statistical helpers shared by the experiments."""

from repro.core.analysis.stats import (
    confidence_interval,
    ecdf,
    mean_std,
    within_interval,
)
from repro.core.analysis.histogram import Histogram
from repro.core.analysis.tables import format_table

__all__ = [
    "confidence_interval",
    "within_interval",
    "mean_std",
    "ecdf",
    "Histogram",
    "format_table",
]
