"""Histogram helper for the transition-delay distribution (Fig 3).

The paper uses 25 µs bins over the latency range.  The class wraps the
numpy histogram with the uniformity diagnostics the Fig 3 discussion
relies on ("approximately uniformly distributed between 390 µs and
1390 µs ... indicates that an internal fixed update interval of 1 ms is
used").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeasurementError


@dataclass(frozen=True)
class Histogram:
    """A binned distribution with uniformity diagnostics."""

    edges: np.ndarray
    counts: np.ndarray

    @classmethod
    def from_samples(
        cls, samples: np.ndarray, bin_width: float, lo: float | None = None, hi: float | None = None
    ) -> "Histogram":
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            raise MeasurementError("no samples")
        lo = float(arr.min()) if lo is None else lo
        hi = float(arr.max()) if hi is None else hi
        if hi <= lo:
            hi = lo + bin_width
        n_bins = max(1, int(np.ceil((hi - lo) / bin_width)))
        edges = lo + np.arange(n_bins + 1) * bin_width
        counts, _ = np.histogram(arr, bins=edges)
        return cls(edges=edges, counts=counts)

    @property
    def n_samples(self) -> int:
        return int(self.counts.sum())

    @property
    def support(self) -> tuple[float, float]:
        """(low, high) edges of the occupied bins."""
        occupied = np.nonzero(self.counts)[0]
        if occupied.size == 0:
            raise MeasurementError("empty histogram")
        return float(self.edges[occupied[0]]), float(self.edges[occupied[-1] + 1])

    def uniformity_cv(self, trim_bins: int = 2) -> float:
        """Coefficient of variation of interior bin counts.

        Small values (<~0.2) indicate a flat (uniform) distribution.
        The first/last ``trim_bins`` occupied bins are excluded — they
        are partially covered by the support's true endpoints.
        """
        occupied = np.nonzero(self.counts)[0]
        interior = self.counts[occupied[0] + trim_bins : occupied[-1] + 1 - trim_bins]
        if interior.size < 2:
            raise MeasurementError("not enough interior bins for uniformity check")
        return float(interior.std() / interior.mean())

    def render_ascii(self, width: int = 50) -> str:
        """A terminal-friendly rendering (used by the benches)."""
        peak = self.counts.max() if self.counts.size else 1
        lines = []
        for i, c in enumerate(self.counts):
            bar = "#" * int(round(width * c / peak)) if peak else ""
            lines.append(f"{self.edges[i]:>10.1f} | {bar} {c}")
        return "\n".join(lines)
