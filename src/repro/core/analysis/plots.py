"""Terminal plotting: scatter and line charts for bench output.

The paper's figures are scatter plots (Fig 9), line series (Fig 5) and
ECDFs (Fig 10); these renderers let the benches show the same shapes in
plain text next to the comparison tables.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeasurementError


def _scale(values: np.ndarray, n_bins: int) -> tuple[np.ndarray, float, float]:
    lo = float(values.min())
    hi = float(values.max())
    if hi <= lo:
        hi = lo + 1.0
    idx = ((values - lo) / (hi - lo) * (n_bins - 1)).round().astype(int)
    return np.clip(idx, 0, n_bins - 1), lo, hi


def ascii_scatter(
    x, y, *, width: int = 60, height: int = 20,
    x_label: str = "x", y_label: str = "y", marker: str = "o",
) -> str:
    """A scatter plot on a character grid (origin bottom-left)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size == 0 or x.shape != y.shape:
        raise MeasurementError("scatter needs equal, non-empty x/y")
    xi, xlo, xhi = _scale(x, width)
    yi, ylo, yhi = _scale(y, height)
    grid = [[" "] * width for _ in range(height)]
    for cx, cy in zip(xi, yi):
        grid[height - 1 - cy][cx] = marker
    lines = [f"{y_label}  {yhi:.1f}"]
    lines += ["  |" + "".join(row) for row in grid]
    lines.append(f"  {ylo:.1f}" + " " * 3 + "-" * (width - 4))
    lines.append(f"   {xlo:.1f} .. {xhi:.1f}  ({x_label})")
    return "\n".join(lines)


def ascii_series(
    series: dict[str, tuple], *, width: int = 60, height: int = 16,
    x_label: str = "x", y_label: str = "y",
) -> str:
    """Overlaid line series; each entry is name -> (x, y).

    Each series gets a distinct marker (a..z); a legend follows the grid.
    """
    if not series:
        raise MeasurementError("no series to plot")
    all_x = np.concatenate([np.asarray(v[0], dtype=float) for v in series.values()])
    all_y = np.concatenate([np.asarray(v[1], dtype=float) for v in series.values()])
    _, xlo, xhi = _scale(all_x, width)
    _, ylo, yhi = _scale(all_y, height)
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for marker, (name, (xs, ys)) in zip("abcdefghijklmnopqrstuvwxyz", series.items()):
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        xi = np.clip(((xs - xlo) / (xhi - xlo + 1e-12) * (width - 1)).round().astype(int), 0, width - 1)
        yi = np.clip(((ys - ylo) / (yhi - ylo + 1e-12) * (height - 1)).round().astype(int), 0, height - 1)
        for cx, cy in zip(xi, yi):
            grid[height - 1 - cy][cx] = marker
        legend.append(f"  {marker} = {name}")
    lines = [f"{y_label}  {yhi:.1f}"]
    lines += ["  |" + "".join(row) for row in grid]
    lines.append(f"  {ylo:.1f}" + " " * 3 + "-" * (width - 4))
    lines.append(f"   {xlo:.1f} .. {xhi:.1f}  ({x_label})")
    lines += legend
    return "\n".join(lines)


def ascii_ecdf(
    groups: dict[str, np.ndarray], *, width: int = 60, height: int = 16,
    x_label: str = "value",
) -> str:
    """Overlaid empirical CDFs (the Fig 10 presentation)."""
    series = {}
    for name, samples in groups.items():
        arr = np.sort(np.asarray(samples, dtype=float))
        probs = np.arange(1, arr.size + 1) / arr.size
        series[name] = (arr, probs)
    return ascii_series(
        series, width=width, height=height, x_label=x_label, y_label="P"
    )
