"""§VI-C: power-state transition times (Fig 8).

Procedure (after Ilsche et al., with the paper's ``sched_waking`` event
change): a caller thread signals a callee idling in a chosen C-state via
``pthread_cond_signal``; the wake-up latency is the time from the
signal to the callee running.  200 samples per combination of C-state
(C0/poll, C1, C2), frequency (1.5/2.2/2.5 GHz) and locality (same CCX
vs. other socket).  The caller stays active, which — as §VI-C notes —
prevents package C-states, so package-level exits never appear.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.experiment import ExperimentConfig
from repro.core.report import ComparisonTable
from repro.units import ghz
from repro.workloads import SPIN


@dataclass
class WakeupSamples:
    """Latency samples for one (state, freq, locality) combination."""

    state: str
    freq_ghz: float
    remote: bool
    latencies_us: np.ndarray

    @property
    def median_us(self) -> float:
        return float(np.median(self.latencies_us))


@dataclass
class CStateLatencyResult:
    """The full Fig 8 grid."""

    samples: list[WakeupSamples] = field(default_factory=list)

    def get(self, state: str, freq_ghz: float, remote: bool = False) -> WakeupSamples:
        for s in self.samples:
            if s.state == state and abs(s.freq_ghz - freq_ghz) < 1e-9 and s.remote == remote:
                return s
        # EXC001: mapping-style lookup facade; callers expect KeyError
        raise KeyError((state, freq_ghz, remote))


class CStateLatencyExperiment:
    """Runs the caller/callee wake-up timing."""

    STATES = ("C0", "C1", "C2")
    FREQS_GHZ = (1.5, 2.2, 2.5)

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()

    def measure(
        self, n_samples: int | None = None, *, include_remote: bool = True
    ) -> CStateLatencyResult:
        cfg = self.config
        n = cfg.scaled(200, minimum=50) if n_samples is None else n_samples
        machine = cfg.build_machine()
        result = CStateLatencyResult()

        for remote in ((False, True) if include_remote else (False,)):
            caller_cpu = machine.os.cpus_of_ccx(0)[0]
            if remote:
                # callee on the other socket's first core
                other_pkg_core = next(machine.topology.packages[1].cores())
                callee_cpu = other_pkg_core.threads[0].cpu_id
            else:
                callee_cpu = machine.os.cpus_of_ccx(0)[1]
            machine.os.run(SPIN, [caller_cpu])  # caller stays active

            for state in self.STATES:
                for freq in self.FREQS_GHZ:
                    machine.os.set_frequency(callee_cpu, ghz(freq))
                    self._prepare_callee(machine, callee_cpu, state)
                    # The callee idles; the hardware enters the requested
                    # state (the caller prevents anything deeper).  Each
                    # signal/wake pair is logged through the tracepoint
                    # buffer (the paper's sched_waking-based timing).
                    lat_ns = machine.wakeup.sample_ns(
                        state, ghz(freq), remote=remote, n=n
                    )
                    machine.trace.clear()
                    t = machine.sim.now_ns
                    for sample in lat_ns:
                        machine.trace.emit(t, "sched_waking", caller_cpu)
                        machine.trace.emit(
                            t + int(sample), "sched_switch", callee_cpu
                        )
                        t += int(sample) + 100_000  # inter-sample gap
                    traced = machine.trace.pairwise_latencies_ns(
                        "sched_waking", "sched_switch"
                    )
                    result.samples.append(
                        WakeupSamples(
                            state=state,
                            freq_ghz=freq,
                            remote=remote,
                            latencies_us=np.asarray(traced, dtype=float) / 1000.0,
                        )
                    )
            machine.os.stop()
        machine.shutdown()
        return result

    def measure_entry(
        self, n_samples: int | None = None
    ) -> dict[tuple[str, float], float]:
        """Median *entry* latencies (the Ilsche et al. companion metric).

        Returns ``{(state, freq_ghz): median_us}`` for the idle states.
        """
        cfg = self.config
        n = cfg.scaled(200, minimum=50) if n_samples is None else n_samples
        machine = cfg.build_machine()
        out: dict[tuple[str, float], float] = {}
        for state in ("C1", "C2"):
            for freq in self.FREQS_GHZ:
                samples = machine.wakeup.sample_entry_ns(state, ghz(freq), n=n)
                out[(state, freq)] = float(np.median(samples)) / 1000.0
        machine.shutdown()
        return out

    @staticmethod
    def _prepare_callee(machine, cpu: int, state: str) -> None:
        """Configure sysfs so the callee's deepest reachable state is ``state``."""
        base = f"/sys/devices/system/cpu/cpu{cpu}/cpuidle"
        # reset
        machine.os.sysfs.write(f"{base}/state1/disable", "0")
        machine.os.sysfs.write(f"{base}/state2/disable", "0")
        if state == "C0":
            machine.os.sysfs.write(f"{base}/state1/disable", "1")
            machine.os.sysfs.write(f"{base}/state2/disable", "1")
        elif state == "C1":
            machine.os.sysfs.write(f"{base}/state2/disable", "1")

    # ------------------------------------------------------------------

    def compare_with_paper(self, result: CStateLatencyResult) -> ComparisonTable:
        table = ComparisonTable("Fig 8: C-state wake-up latencies (local)")
        table.add("C1 @2.5 GHz", 1.0, result.get("C1", 2.5).median_us, "us", 0.15)
        table.add("C1 @2.2 GHz", 1.1, result.get("C1", 2.2).median_us, "us", 0.15)
        table.add("C1 @1.5 GHz", 1.5, result.get("C1", 1.5).median_us, "us", 0.15)
        c2_meds = [result.get("C2", f).median_us for f in self.FREQS_GHZ]
        table.add("C2 in 20..25 us band (min)", 20.0, min(c2_meds), "us", 0.12)
        table.add("C2 in 20..25 us band (max)", 25.0, max(c2_meds), "us", 0.12)
        try:
            remote_extra = (
                result.get("C1", 2.5, remote=True).median_us
                - result.get("C1", 2.5).median_us
            )
            table.add("remote extra", 1.0, remote_extra, "us", 0.25)
        except KeyError:
            pass
        return table
