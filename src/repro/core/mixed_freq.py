"""§V-C: mixed frequencies within one CCX (Table I and Fig 4).

Procedure (paper): run ``while(1);`` on all cores of one CCX; configure
one core's frequency differently from the other three; observe the
measured core with ``perf stat`` for 120 one-second intervals (Table I);
then measure L3 pointer-chase latency for the same setups with hardware
prefetchers disabled and huge pages (Fig 4), keeping the *minimum* of
repeated measurements to reject perturbed samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.experiment import ExperimentConfig
from repro.core.report import ComparisonTable
from repro.units import ghz
from repro.workloads import SPIN, pointer_chase


@dataclass
class MixedFrequencyResult:
    """Table I reproduction: mean applied GHz by (set, others) pair."""

    set_freqs_ghz: list[float]
    other_freqs_ghz: list[float]
    #: mean_applied_ghz[i][j] for set_freqs[i] x other_freqs[j]
    mean_applied_ghz: np.ndarray

    def cell(self, set_ghz: float, others_ghz: float) -> float:
        i = self.set_freqs_ghz.index(set_ghz)
        j = self.other_freqs_ghz.index(others_ghz)
        return float(self.mean_applied_ghz[i, j])


@dataclass
class L3LatencyResult:
    """Fig 4 reproduction: L3 latency by (set, others) pair, in ns."""

    set_freqs_ghz: list[float]
    other_freqs_ghz: list[float]
    latency_ns: np.ndarray

    def cell(self, set_ghz: float, others_ghz: float) -> float:
        i = self.set_freqs_ghz.index(set_ghz)
        j = self.other_freqs_ghz.index(others_ghz)
        return float(self.latency_ns[i, j])


#: Table I of the paper (GHz), indexed [set][others].
PAPER_TABLE_I = {
    1.5: {1.5: 1.499, 2.2: 1.466, 2.5: 1.428},
    2.2: {1.5: 2.200, 2.2: 2.199, 2.5: 2.000},
    2.5: {1.5: 2.497, 2.2: 2.499, 2.5: 2.499},
}


class MixedFrequencyExperiment:
    """Runs the §V-C setups."""

    FREQS_GHZ = [1.5, 2.2, 2.5]

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()

    def _setup(self, machine, set_ghz: float, others_ghz: float):
        """All four cores of CCX 0 active; core 0 configured differently."""
        cpus = machine.os.cpus_of_ccx(0)
        machine.os.run(SPIN, cpus)
        measured = cpus[0]
        machine.os.set_frequency(measured, ghz(set_ghz))
        for cpu in cpus[1:]:
            machine.os.set_frequency(cpu, ghz(others_ghz))
        return measured

    # ------------------------------------------------------------------

    def measure_applied_frequencies(self, n_intervals: int | None = None) -> MixedFrequencyResult:
        """Table I: perf-observed mean frequency of the measured core."""
        cfg = self.config
        n = cfg.scaled(120, minimum=20) if n_intervals is None else n_intervals
        grid = np.zeros((len(self.FREQS_GHZ), len(self.FREQS_GHZ)))
        for i, set_ghz in enumerate(self.FREQS_GHZ):
            for j, others_ghz in enumerate(self.FREQS_GHZ):
                machine = cfg.build_machine()
                measured = self._setup(machine, set_ghz, others_ghz)
                samples = machine.os.perf.sample([measured], 1.0, n)
                freqs = [row[0].freq_hz for row in samples]
                grid[i, j] = float(np.mean(freqs)) / ghz(1)
                machine.shutdown()
        return MixedFrequencyResult(
            set_freqs_ghz=list(self.FREQS_GHZ),
            other_freqs_ghz=list(self.FREQS_GHZ),
            mean_applied_ghz=grid,
        )

    def measure_l3_latencies(self, n_repeats: int = 11) -> L3LatencyResult:
        """Fig 4: pointer-chase L3 latency, minimum of repeats.

        The measured core runs the pointer chase; the other three run the
        active spin workload; latency follows the core's (penalized) mean
        clock and the CCX's L3 clock.
        """
        cfg = self.config
        rng = cfg.build_machine().rng.child("l3-latency-noise")
        grid = np.zeros((len(self.FREQS_GHZ), len(self.FREQS_GHZ)))
        for i, set_ghz in enumerate(self.FREQS_GHZ):
            for j, others_ghz in enumerate(self.FREQS_GHZ):
                machine = cfg.build_machine()
                measured = self._setup(machine, set_ghz, others_ghz)
                machine.os.run(pointer_chase("L3"), [measured])
                core = machine.topology.thread(measured).core
                ccx = core.ccx
                base = machine.latency_model.l3_latency_ns(
                    machine.observable_mean_hz(core), ccx.l3_freq_hz
                )
                # Repeated measurements perturbed by OS/hardware noise;
                # keep the minimum, as the paper does.
                noise = rng.lognormal(mean=0.0, sigma=0.08, size=n_repeats)
                samples = base * np.maximum(1.0, noise)
                grid[i, j] = float(samples.min())
                machine.shutdown()
        return L3LatencyResult(
            set_freqs_ghz=list(self.FREQS_GHZ),
            other_freqs_ghz=list(self.FREQS_GHZ),
            latency_ns=grid,
        )

    # ------------------------------------------------------------------

    def compare_with_paper(self, result: MixedFrequencyResult) -> ComparisonTable:
        table = ComparisonTable("Table I: mixed frequencies on one CCX")
        for set_ghz, row in PAPER_TABLE_I.items():
            for others_ghz, paper in row.items():
                table.add(
                    f"set {set_ghz} / others {others_ghz}",
                    paper,
                    result.cell(set_ghz, others_ghz),
                    "GHz",
                    tolerance_rel=0.01,
                )
        return table

    def check_l3_monotonicity(self, result: L3LatencyResult) -> bool:
        """Fig 4's qualitative claim: for a 1.5 GHz core, faster
        neighbours *reduce* L3 latency."""
        lat_15 = [result.cell(1.5, o) for o in self.FREQS_GHZ]
        return lat_15[0] > lat_15[1] > lat_15[2]
