"""§V-D: I/O-die P-state and DRAM frequency vs. memory performance (Fig 5).

Procedure: STREAM-Triad bandwidth with 1..N compactly placed cores and
pointer-chase main-memory latency, swept over the BIOS I/O-die P-state
(Auto, P0, P1, P2) and DRAM speed grade.  Prefetchers disabled, huge
pages used (latency); threads "well placed" via OpenMP envs (bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.experiment import ExperimentConfig
from repro.core.report import ComparisonTable
from repro.iodie.fclk import FclkMode
from repro.units import ghz
from repro.workloads import STREAM_TRIAD, pointer_chase

#: The BIOS sweep of the paper's Fig 5.
FCLK_MODES = (FclkMode.AUTO, FclkMode.P0, FclkMode.P1, FclkMode.P2)
DRAM_GRADES = ("DDR4-2666", "DDR4-3200")


@dataclass
class BandwidthSweepResult:
    """bandwidth_gbs[(mode, dram)] -> array over core counts."""

    core_counts: list[int]
    series: dict[tuple[str, str], np.ndarray] = field(default_factory=dict)

    def at(self, mode: FclkMode, dram: str, n_cores: int) -> float:
        key = (mode.name, dram)
        return float(self.series[key][self.core_counts.index(n_cores)])


@dataclass
class LatencySweepResult:
    """latency_ns[(mode, dram)]."""

    latency_ns: dict[tuple[str, str], float] = field(default_factory=dict)

    def at(self, mode: FclkMode, dram: str) -> float:
        return self.latency_ns[(mode.name, dram)]


class MemoryPerformanceExperiment:
    """Runs the Fig 5 sweeps."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()

    def measure_bandwidth(
        self, core_counts: list[int] | None = None, n_repeats: int = 5
    ) -> BandwidthSweepResult:
        """STREAM-Triad bandwidth over core count x fclk x DRAM."""
        counts = core_counts or [1, 2, 3, 4, 6, 8, 12, 16, 24, 32]
        result = BandwidthSweepResult(core_counts=counts)
        for mode in FCLK_MODES:
            for dram in DRAM_GRADES:
                machine = self.config.build_machine(fclk_mode=mode, dram=dram)
                rng = machine.rng.child("stream-noise")
                fc = machine.fclk_controllers[0]
                series = np.zeros(len(counts))
                for k, n in enumerate(counts):
                    cpus = machine.os.compact_cpus(n)
                    machine.os.run(STREAM_TRIAD, cpus)
                    machine.os.set_all_frequencies(ghz(2.5))
                    bw = machine.bandwidth_model.node_bandwidth_gbs(
                        n, ghz(2.5), fc
                    ).bandwidth_gbs
                    # best-of-repeats against run-to-run noise
                    noise = 1.0 - np.abs(rng.normal(0.0, 0.01, size=n_repeats))
                    series[k] = bw * noise.max()
                    machine.os.stop()
                result.series[(mode.name, dram)] = series
                machine.shutdown()
        return result

    def measure_latency(self, n_repeats: int = 11) -> LatencySweepResult:
        """Pointer-chase DRAM latency over fclk x DRAM (min of repeats)."""
        result = LatencySweepResult()
        for mode in FCLK_MODES:
            for dram in DRAM_GRADES:
                machine = self.config.build_machine(fclk_mode=mode, dram=dram)
                rng = machine.rng.child("latency-noise")
                cpu = machine.os.compact_cpus(1)[0]
                machine.os.run(pointer_chase("DRAM"), [cpu])
                machine.os.set_frequency(cpu, ghz(2.5))
                fc = machine.fclk_controllers[0]
                core = machine.topology.thread(cpu).core
                base = machine.latency_model.dram_latency_ns(
                    core.applied_freq_hz, fc, l3_freq_hz=core.ccx.l3_freq_hz
                )
                noise = rng.lognormal(0.0, 0.05, size=n_repeats)
                result.latency_ns[(mode.name, dram)] = float(
                    (base * np.maximum(1.0, noise)).min()
                )
                machine.shutdown()
        return result

    # ------------------------------------------------------------------

    def compare_with_paper(
        self, bw: BandwidthSweepResult, lat: LatencySweepResult
    ) -> ComparisonTable:
        table = ComparisonTable("Fig 5: I/O-die P-state & DRAM frequency")
        # The two latency numbers the text names explicitly:
        table.add("latency auto @DDR4-3200", 92.0, lat.at(FclkMode.AUTO, "DDR4-3200"), "ns", 0.02)
        table.add("latency P0 @DDR4-3200", 96.0, lat.at(FclkMode.P0, "DDR4-3200"), "ns", 0.02)
        # Qualitative claims, encoded as indicator quantities (1.0 = holds):
        table.add(
            "2 cores reach max bandwidth (sat ratio)",
            1.0,
            bw.at(FclkMode.P0, "DDR4-3200", 2)
            / max(bw.series[("P0", "DDR4-3200")]),
            "",
            0.02,
        )
        table.add(
            "P2 beats P0 at high DRAM clock",
            1.0,
            1.0 if lat.at(FclkMode.P2, "DDR4-3200") < lat.at(FclkMode.P0, "DDR4-3200") else 0.0,
            "",
            0.0,
        )
        table.add(
            "P2 worse than P0 at low DRAM clock",
            1.0,
            1.0 if lat.at(FclkMode.P2, "DDR4-2666") > lat.at(FclkMode.P0, "DDR4-2666") else 0.0,
            "",
            0.0,
        )
        table.add(
            "auto bandwidth matches best fixed state",
            1.0,
            max(bw.series[("AUTO", "DDR4-3200")])
            / max(bw.series[("P0", "DDR4-3200")]),
            "",
            0.03,
        )
        table.add(
            "higher DRAM clock adds little bandwidth",
            1.0,
            max(bw.series[("P0", "DDR4-3200")])
            / max(bw.series[("P0", "DDR4-2666")]),
            "",
            0.06,
        )
        return table
