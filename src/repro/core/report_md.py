"""Render a suite run as Markdown (the EXPERIMENTS.md generator).

``render_markdown(suite_result)`` produces a paper-vs-measured document
in the same shape as the repository's EXPERIMENTS.md, so a re-run at a
different seed/scale can regenerate the archive mechanically.
"""

from __future__ import annotations

from repro.core.report import ComparisonTable
from repro.core.suite import SuiteResult

_TITLES = {
    "sec5a_idle_sibling": "§V-A — idle sibling threads raise the core clock",
    "fig3_transition_delay": "Fig 3 — frequency-transition delays",
    "tab1_mixed_frequencies": "Table I — mixed frequencies on one CCX",
    "fig5_memory_performance": "Fig 5 — I/O-die P-state & DRAM frequency",
    "fig6_firestarter": "Fig 6 — FIRESTARTER frequency limits (EDC)",
    "fig7_idle_power": "Fig 7 — idle power staircase",
    "fig8_cstate_latency": "Fig 8 — C-state wake-up latencies",
    "fig9_rapl_quality": "Fig 9 — RAPL quality (vs AC reference)",
    "fig10_data_power": "Fig 10 — operand Hamming weight vs power",
    "sec7_rapl_update_rate": "§VII — RAPL update rate",
}


def _table_md(table: ComparisonTable) -> str:
    lines = [
        "| quantity | paper | measured | unit | deviation | status |",
        "|---|---|---|---|---|---|",
    ]
    for c in table.comparisons:
        status = "ok" if c.ok else "**DEVIATES**"
        lines.append(
            f"| {c.quantity} | {c.paper_value:g} | {c.measured_value:.4g} "
            f"| {c.unit} | {100 * c.deviation_rel:.1f} % | {status} |"
        )
    return "\n".join(lines)


def render_markdown(result: SuiteResult) -> str:
    """The full Markdown document for one suite run."""
    head = [
        "# Reproduction report — paper vs. measured",
        "",
        f"Configuration: seed {result.config.seed}, scale "
        f"{result.config.scale:g}, SKU {result.config.sku}, "
        f"{result.config.n_packages} package(s).",
        "",
        f"Overall verdict: **{'all experiments within bands' if result.all_ok else 'DEVIATIONS PRESENT'}**.",
        "",
    ]
    body = []
    for name, table in result.tables.items():
        title = _TITLES.get(name, name)
        body.append(f"## {title}")
        body.append("")
        body.append(_table_md(table))
        body.append("")
    return "\n".join(head + body)


def write_markdown(result: SuiteResult, path: str) -> None:
    """Render and write the report."""
    with open(path, "w") as fh:
        fh.write(render_markdown(result))
        fh.write("\n")
