"""Paper-vs-measured comparison records.

Each experiment emits :class:`Comparison` rows; the benches print them
and EXPERIMENTS.md archives them.  ``tolerance_rel`` encodes the
acceptance band from DESIGN.md §5 (shape/ratio fidelity, not absolute
silicon values).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analysis.tables import format_table


@dataclass(frozen=True)
class Comparison:
    """One quantity: what the paper reports vs. what we measured."""

    quantity: str
    paper_value: float
    measured_value: float
    unit: str = ""
    tolerance_rel: float = 0.05

    @property
    def deviation_rel(self) -> float:
        if self.paper_value == 0.0:
            return abs(self.measured_value)
        return abs(self.measured_value - self.paper_value) / abs(self.paper_value)

    @property
    def ok(self) -> bool:
        return self.deviation_rel <= self.tolerance_rel


@dataclass
class ComparisonTable:
    """A named collection of comparisons for one experiment."""

    experiment: str
    comparisons: list[Comparison] = field(default_factory=list)

    def add(
        self,
        quantity: str,
        paper_value: float,
        measured_value: float,
        unit: str = "",
        tolerance_rel: float = 0.05,
    ) -> Comparison:
        comp = Comparison(quantity, paper_value, measured_value, unit, tolerance_rel)
        self.comparisons.append(comp)
        return comp

    @property
    def all_ok(self) -> bool:
        return all(c.ok for c in self.comparisons)

    def failures(self) -> list[Comparison]:
        return [c for c in self.comparisons if not c.ok]

    def render(self) -> str:
        rows = [
            (
                c.quantity,
                c.paper_value,
                c.measured_value,
                c.unit,
                f"{100 * c.deviation_rel:.1f}%",
                "ok" if c.ok else "DEVIATES",
            )
            for c in self.comparisons
        ]
        table = format_table(
            ["quantity", "paper", "measured", "unit", "dev", "status"], rows
        )
        return f"== {self.experiment} ==\n{table}"
