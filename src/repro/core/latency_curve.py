# lint: disable-file=UNIT001 — measured latency curves hold fractional ns
# medians (analytic results, not event-engine time).
"""Working-set latency curve (the Molka et al. pointer-chase sweep).

Not a numbered figure of this paper, but the instrument behind Fig 4 and
Fig 5's latency panel: a dependent-load chain over an increasing working
set traces out the L1 / L2 / L3 / DRAM plateaus.  The curve makes the
cache geometry (§III-A) directly visible and is what the paper's future
work ("analyze the memory architecture ... in higher detail") would
start from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.experiment import ExperimentConfig
from repro.memory.hierarchy import level_for_footprint
from repro.units import ghz
from repro.workloads import pointer_chase

KIB = 1024


@dataclass
class LatencyCurve:
    """Latency (ns) per working-set size (bytes)."""

    sizes_bytes: list[int] = field(default_factory=list)
    latencies_ns: list[float] = field(default_factory=list)
    levels: list[str] = field(default_factory=list)

    def plateau_ns(self, level: str) -> float:
        """Median latency over the sizes resolved to ``level``."""
        vals = [l for l, lev in zip(self.latencies_ns, self.levels) if lev == level]
        if not vals:
            raise KeyError(f"no sizes landed in {level}")  # EXC001: dict-like lookup
        return float(np.median(vals))


class LatencyCurveExperiment:
    """Sweeps the pointer chase over working-set sizes."""

    #: Default sweep: 8 KiB .. 256 MiB, factor ~2 per step.
    DEFAULT_SIZES = [
        8 * KIB, 16 * KIB, 24 * KIB, 48 * KIB, 96 * KIB, 192 * KIB,
        384 * KIB, 768 * KIB, 1536 * KIB, 3 * 1024 * KIB, 6 * 1024 * KIB,
        12 * 1024 * KIB, 24 * 1024 * KIB, 64 * 1024 * KIB, 256 * 1024 * KIB,
    ]

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()

    def measure(
        self,
        sizes_bytes: list[int] | None = None,
        core_freq_ghz: float = 2.5,
        n_repeats: int = 7,
    ) -> LatencyCurve:
        sizes = sizes_bytes or self.DEFAULT_SIZES
        machine = self.config.build_machine()
        rng = machine.rng.child("latency-curve")
        cpu = machine.os.compact_cpus(1)[0]
        machine.os.run(pointer_chase("L3"), [cpu])
        machine.os.set_frequency(cpu, ghz(core_freq_ghz))
        core = machine.topology.thread(cpu).core
        fc = machine.fclk_controllers[0]

        curve = LatencyCurve()
        for size in sizes:
            level = level_for_footprint(size)
            if level is None:
                base = machine.latency_model.dram_latency_ns(
                    core.applied_freq_hz, fc, l3_freq_hz=core.ccx.l3_freq_hz
                )
                name = "DRAM"
            else:
                base = machine.latency_model.cache_latency_ns(
                    level, core.applied_freq_hz, core.ccx.l3_freq_hz
                )
                name = level.name
            noise = rng.lognormal(0.0, 0.04, size=n_repeats)
            curve.sizes_bytes.append(size)
            curve.latencies_ns.append(float((base * np.maximum(1.0, noise)).min()))
            curve.levels.append(name)
        machine.shutdown()
        return curve
