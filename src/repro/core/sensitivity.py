"""Calibration sensitivity analysis.

Perturb each load-bearing calibration constant by a relative amount and
re-run the fast anchor self-check (:mod:`repro.core.selfcheck`).  The
outcome tells a porter two things:

* which observables each constant feeds (the broken selfcheck rows);
* which constants the reproduction is *insensitive* to — the
  decomposition choices that only matter through their sums.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.selfcheck import selfcheck
from repro.machine import Machine
from repro.power.calibration import CALIBRATION, Calibration

#: Constants worth perturbing, with a short note on what should break.
DEFAULT_TARGETS: dict[str, str] = {
    "system_wake_w": "first-C1 and first-active anchors",
    "platform_base_w": "every absolute power anchor",
    "pause_core_nominal_w": "first-active anchor",
    "edc_dyn_a_per_ipcghz_2t": "FIRESTARTER throttle point",
    "mem_sync_penalty_coeff_ns": "fclk-auto latency anchor",
    "mem_latency_core_path_ns": "DRAM latency anchors",
    "transition_down_ns": "transition execution constant",
    "dram_idle_w": "idle floor",
    "c1_per_core_w": "nothing in the fast check (slope-only constant)",
}


@dataclass(frozen=True)
class SensitivityRow:
    """Result of one perturbation."""

    constant: str
    perturbation_rel: float
    broke: tuple[str, ...]  # names of failing selfcheck rows

    @property
    def sensitive(self) -> bool:
        return bool(self.broke)


@dataclass
class SensitivityResult:
    rows: list[SensitivityRow] = field(default_factory=list)

    def sensitive_constants(self) -> list[str]:
        return sorted({r.constant for r in self.rows if r.sensitive})

    def insensitive_constants(self) -> list[str]:
        sensitive = set(self.sensitive_constants())
        return sorted({r.constant for r in self.rows} - sensitive)


def run_sensitivity(
    targets: dict[str, str] | None = None,
    *,
    perturbation_rel: float = 0.10,
    seed: int = 0,
    base: Calibration = CALIBRATION,
) -> SensitivityResult:
    """Perturb each target constant up by ``perturbation_rel``."""
    result = SensitivityResult()
    for name in (targets or DEFAULT_TARGETS):
        value = getattr(base, name)
        perturbed = replace(base, **{name: value * (1.0 + perturbation_rel)})
        machine = Machine("EPYC 7502", seed=seed, calibration=perturbed)
        table = selfcheck(machine)
        machine.shutdown()
        result.rows.append(
            SensitivityRow(
                constant=name,
                perturbation_rel=perturbation_rel,
                broke=tuple(c.quantity for c in table.failures()),
            )
        )
    return result
