"""Run the full evaluation as one suite and emit a structured report.

``run_suite`` executes every paper artifact's experiment at a chosen
scale and collects the :class:`~repro.core.report.ComparisonTable` of
each; ``suite_to_dict`` turns the lot into a JSON document for
regression tracking (the structured sibling of EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.cstate_latency import CStateLatencyExperiment
from repro.core.data_power import DataPowerExperiment
from repro.core.experiment import ExperimentConfig
from repro.core.freq_transition import FrequencyTransitionExperiment
from repro.core.idle_power import IdlePowerExperiment
from repro.core.idle_sibling import IdleSiblingExperiment
from repro.core.memperf import MemoryPerformanceExperiment
from repro.core.mixed_freq import MixedFrequencyExperiment
from repro.core.rapl_quality import RaplQualityExperiment
from repro.core.rapl_rate import RaplUpdateRateExperiment
from repro.core.report import ComparisonTable
from repro.core.serialize import table_to_dict
from repro.core.throughput import ThroughputLimitExperiment
from repro.units import ghz


def _run_sec5a(cfg: ExperimentConfig) -> ComparisonTable:
    exp = IdleSiblingExperiment(cfg)
    return exp.compare_with_paper(exp.measure())


def _run_fig3(cfg: ExperimentConfig) -> ComparisonTable:
    exp = FrequencyTransitionExperiment(cfg)
    return exp.compare_with_paper(exp.measure_pair(ghz(2.2), ghz(1.5)))


def _run_tab1(cfg: ExperimentConfig) -> ComparisonTable:
    exp = MixedFrequencyExperiment(cfg)
    return exp.compare_with_paper(exp.measure_applied_frequencies())


def _run_fig5(cfg: ExperimentConfig) -> ComparisonTable:
    exp = MemoryPerformanceExperiment(cfg)
    return exp.compare_with_paper(exp.measure_bandwidth(), exp.measure_latency())


def _run_fig6(cfg: ExperimentConfig) -> ComparisonTable:
    exp = ThroughputLimitExperiment(cfg)
    return exp.compare_with_paper(exp.measure(smt=True), exp.measure(smt=False))


def _run_fig7(cfg: ExperimentConfig) -> ComparisonTable:
    exp = IdlePowerExperiment(cfg)
    return exp.compare_with_paper(
        exp.sweep_c1(step_cpus=list(range(8))),
        exp.sweep_c0(step_cpus=list(range(8))),
    )


def _run_fig8(cfg: ExperimentConfig) -> ComparisonTable:
    exp = CStateLatencyExperiment(cfg)
    return exp.compare_with_paper(exp.measure())


def _run_fig9(cfg: ExperimentConfig) -> ComparisonTable:
    exp = RaplQualityExperiment(cfg)
    return exp.compare_with_paper(exp.measure(placements=("all", "half")))


def _run_fig10(cfg: ExperimentConfig) -> ComparisonTable:
    exp = DataPowerExperiment(cfg)
    return exp.compare_with_paper(exp.measure("vxorps"), exp.measure("shr"))


def _run_rapl_rate(cfg: ExperimentConfig) -> ComparisonTable:
    exp = RaplUpdateRateExperiment(cfg)
    return exp.compare_with_paper(exp.measure())


SUITE: dict[str, Callable[[ExperimentConfig], ComparisonTable]] = {
    "sec5a_idle_sibling": _run_sec5a,
    "fig3_transition_delay": _run_fig3,
    "tab1_mixed_frequencies": _run_tab1,
    "fig5_memory_performance": _run_fig5,
    "fig6_firestarter": _run_fig6,
    "fig7_idle_power": _run_fig7,
    "fig8_cstate_latency": _run_fig8,
    "fig9_rapl_quality": _run_fig9,
    "fig10_data_power": _run_fig10,
    "sec7_rapl_update_rate": _run_rapl_rate,
}


@dataclass
class SuiteResult:
    """All comparison tables plus the aggregate verdict."""

    config: ExperimentConfig
    tables: dict[str, ComparisonTable] = field(default_factory=dict)

    @property
    def all_ok(self) -> bool:
        return all(t.all_ok for t in self.tables.values())

    def failures(self) -> dict[str, list]:
        return {
            name: t.failures() for name, t in self.tables.items() if not t.all_ok
        }

    def render(self) -> str:
        return "\n\n".join(t.render() for t in self.tables.values())


def run_suite(
    config: ExperimentConfig | None = None,
    only: list[str] | None = None,
) -> SuiteResult:
    """Execute the (optionally filtered) suite."""
    cfg = config or ExperimentConfig(scale=0.02)
    names = list(SUITE) if only is None else only
    unknown = set(names) - set(SUITE)
    if unknown:
        raise KeyError(f"unknown suite entries: {sorted(unknown)}")  # EXC001: dict-like lookup
    result = SuiteResult(config=cfg)
    for name in names:
        result.tables[name] = SUITE[name](cfg)
    return result


def suite_to_dict(result: SuiteResult) -> dict[str, Any]:
    """The JSON document for regression tracking."""
    return {
        "seed": int(result.config.seed),
        "scale": float(result.config.scale),
        "sku": str(result.config.sku),
        "all_ok": bool(result.all_ok),
        "experiments": {
            name: table_to_dict(table) for name, table in result.tables.items()
        },
    }
