"""Run the full evaluation as one suite and emit a structured report.

``run_suite`` executes every paper artifact's experiment at a chosen
scale and collects the :class:`~repro.core.report.ComparisonTable` of
each; ``suite_to_dict`` turns the lot into a JSON document for
regression tracking (the structured sibling of EXPERIMENTS.md).

The ten artifacts are independent, so ``run_suite(parallel=N)`` fans
them out across worker processes via :mod:`repro.parallel`; passing a
:class:`repro.cache.ResultCache` re-uses results of identical
(experiment, config, code) combinations across runs.  Both paths are
guaranteed byte-identical to the default serial single-process run:
every table — serial, parallel, or cached — travels through the same
``table_to_dict``/``table_from_dict`` round trip, so ``suite_to_dict``
digests match regardless of execution mode (docs/parallelism.md).
"""

from __future__ import annotations

import os
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable

from repro.core.cstate_latency import CStateLatencyExperiment
from repro.core.data_power import DataPowerExperiment
from repro.core.experiment import ExperimentConfig
from repro.core.freq_transition import FrequencyTransitionExperiment
from repro.core.idle_power import IdlePowerExperiment
from repro.core.idle_sibling import IdleSiblingExperiment
from repro.core.memperf import MemoryPerformanceExperiment
from repro.core.mixed_freq import MixedFrequencyExperiment
from repro.core.rapl_quality import RaplQualityExperiment
from repro.core.rapl_rate import RaplUpdateRateExperiment
from repro.core.report import ComparisonTable
from repro.core.serialize import table_from_dict, table_to_dict
from repro.core.throughput import ThroughputLimitExperiment
from repro.errors import SuiteError
from repro.parallel import Task, TaskFailure, run_tasks
from repro.sim.backends import resolve_backend
from repro.units import ghz

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache import CacheStats, ResultCache


def _run_sec5a(cfg: ExperimentConfig) -> ComparisonTable:
    exp = IdleSiblingExperiment(cfg)
    return exp.compare_with_paper(exp.measure())


def _run_fig3(cfg: ExperimentConfig) -> ComparisonTable:
    exp = FrequencyTransitionExperiment(cfg)
    return exp.compare_with_paper(exp.measure_pair(ghz(2.2), ghz(1.5)))


def _run_tab1(cfg: ExperimentConfig) -> ComparisonTable:
    exp = MixedFrequencyExperiment(cfg)
    return exp.compare_with_paper(exp.measure_applied_frequencies())


def _run_fig5(cfg: ExperimentConfig) -> ComparisonTable:
    exp = MemoryPerformanceExperiment(cfg)
    return exp.compare_with_paper(exp.measure_bandwidth(), exp.measure_latency())


def _run_fig6(cfg: ExperimentConfig) -> ComparisonTable:
    exp = ThroughputLimitExperiment(cfg)
    return exp.compare_with_paper(exp.measure(smt=True), exp.measure(smt=False))


def _run_fig7(cfg: ExperimentConfig) -> ComparisonTable:
    exp = IdlePowerExperiment(cfg)
    return exp.compare_with_paper(
        exp.sweep_c1(step_cpus=list(range(8))),
        exp.sweep_c0(step_cpus=list(range(8))),
    )


def _run_fig8(cfg: ExperimentConfig) -> ComparisonTable:
    exp = CStateLatencyExperiment(cfg)
    return exp.compare_with_paper(exp.measure())


def _run_fig9(cfg: ExperimentConfig) -> ComparisonTable:
    exp = RaplQualityExperiment(cfg)
    return exp.compare_with_paper(exp.measure(placements=("all", "half")))


def _run_fig10(cfg: ExperimentConfig) -> ComparisonTable:
    exp = DataPowerExperiment(cfg)
    return exp.compare_with_paper(exp.measure("vxorps"), exp.measure("shr"))


def _run_rapl_rate(cfg: ExperimentConfig) -> ComparisonTable:
    exp = RaplUpdateRateExperiment(cfg)
    return exp.compare_with_paper(exp.measure())


SUITE: dict[str, Callable[[ExperimentConfig], ComparisonTable]] = {
    "sec5a_idle_sibling": _run_sec5a,
    "fig3_transition_delay": _run_fig3,
    "tab1_mixed_frequencies": _run_tab1,
    "fig5_memory_performance": _run_fig5,
    "fig6_firestarter": _run_fig6,
    "fig7_idle_power": _run_fig7,
    "fig8_cstate_latency": _run_fig8,
    "fig9_rapl_quality": _run_fig9,
    "fig10_data_power": _run_fig10,
    "sec7_rapl_update_rate": _run_rapl_rate,
}


def _execute_entry(
    name: str, cfg: ExperimentConfig, monitor: bool = False, obs=None
) -> dict[str, Any]:
    """Run one registry entry and return its serialized table.

    This is the unit of work shipped to pool workers, so it returns the
    plain-dict form: cheap to pickle, and the same representation the
    cache stores — every execution mode shares one canonical format.

    With ``monitor=True`` an :class:`~repro.lint.monitor.InvariantMonitor`
    is attached (in collecting mode) to every machine the entry builds,
    and the document grows an ``"invariants"`` key.  Monitored documents
    never enter the result cache — their shape differs, and a cache hit
    would skip the sweep the caller asked for.

    ``obs`` instruments every machine the entry builds (serial runs
    only: a :class:`repro.obs.Obs` never crosses a process boundary, so
    parallel workers always receive ``obs=None``).  The returned
    document is independent of ``obs`` — observability data lives in
    the obs bundle, never in the result.

    Entry start/end always leave flight-recorder breadcrumbs (and the
    entry name as ring context), so a crash bundle from any execution
    mode names the experiment that was running.
    """
    from repro.obs.flightrec import recorder

    rec = recorder()
    rec.context["entry"] = name
    rec.note("suite.entry.start", entry=name, seed=cfg.seed)
    try:
        return _execute_entry_inner(name, cfg, monitor, obs)
    finally:
        rec.note("suite.entry.end", entry=name)
        rec.context.pop("entry", None)


def _execute_entry_inner(
    name: str, cfg: ExperimentConfig, monitor: bool = False, obs=None
) -> dict[str, Any]:
    """The entry body behind the flight-recorder breadcrumbs."""
    if not monitor and obs is None:
        return table_to_dict(SUITE[name](cfg))

    from repro.core.experiment import machine_hook

    if monitor:
        from repro.lint.monitor import InvariantMonitor

    monitors: list = []

    def attach(machine) -> None:
        if obs is not None:
            machine.attach_obs(obs)
        if monitor:
            monitors.append(
                InvariantMonitor(
                    machine, raise_on_violation=False, obs=obs
                ).attach()
            )

    with machine_hook(attach):
        table = SUITE[name](cfg)
    for mon in monitors:
        mon.detach()
    if not monitor:
        return table_to_dict(table)
    return {
        "table": table_to_dict(table),
        "invariants": {
            "machines": len(monitors),
            "checks": sum(mon.checks_run for mon in monitors),
            "violations": [v for mon in monitors for v in mon.violations],
        },
    }


def _execute_entry_traced(
    name: str,
    cfg: ExperimentConfig,
    monitor: bool = False,
    trace: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Run one entry in a pool worker with its own tracer.

    The parent cannot ship its :class:`repro.obs.Obs` across the process
    boundary, so the worker builds a private one, inherits the parent's
    ``trace_id`` through the ``trace`` context dict, runs the real
    experiment under full instrumentation (machine attach included, via
    ``_execute_entry``), and returns the serialized trace document next
    to the result — the parent merges them with
    :func:`suite_trace_document`.  The ``"doc"`` payload is exactly what
    the untraced path returns, so cached results and suite documents
    stay byte-identical with tracing on or off.
    """
    from repro.obs import Obs

    trace = trace or {}
    obs = Obs(trace_id=trace.get("trace_id"))
    with obs.tracer.span(name, cat="experiment"):
        doc = _execute_entry(name, cfg, monitor, obs)
    return {
        "doc": doc,
        "trace": obs.trace_document(entry=name, os_pid=os.getpid()),
    }


@dataclass
class InvariantSummary:
    """Runtime invariant sweep of one monitored suite entry."""

    machines: int = 0
    checks: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "InvariantSummary":
        return cls(
            machines=int(doc.get("machines", 0)),
            checks=int(doc.get("checks", 0)),
            violations=[str(v) for v in doc.get("violations", [])],
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "machines": self.machines,
            "checks": self.checks,
            "violations": list(self.violations),
        }


@dataclass
class SuiteResult:
    """All comparison tables plus the aggregate verdict.

    ``errors`` holds structured pool failures (worker raised, timed out,
    or died and exhausted its retries) keyed by experiment name; a
    failed entry has no table.  ``cache_stats`` is the live counter
    object of the cache used for the run, if any.  ``invariants`` is
    populated only by monitored runs (``run_suite(monitor=True)``); a
    violation fails the suite exactly like a mismatching table.
    """

    config: ExperimentConfig
    tables: dict[str, ComparisonTable] = field(default_factory=dict)
    errors: dict[str, TaskFailure] = field(default_factory=dict)
    cache_stats: "CacheStats | None" = None
    invariants: dict[str, InvariantSummary] = field(default_factory=dict)
    #: The obs bundle the run was instrumented with, if any.  Never
    #: serialized: :func:`suite_to_dict` depends only on experiment
    #: outputs, so traced and untraced runs stay byte-identical.
    obs: Any = None
    #: ``repro.obs/trace`` documents shipped back by pool workers of a
    #: traced parallel run (one per executed entry), in completion
    #: order.  Merged with the parent timeline by
    #: :func:`suite_trace_document`; never serialized into the suite
    #: document.
    worker_traces: list = field(default_factory=list)

    @property
    def all_ok(self) -> bool:
        return (
            not self.errors
            and all(t.all_ok for t in self.tables.values())
            and all(inv.ok for inv in self.invariants.values())
        )

    def failures(self) -> dict[str, list]:
        return {
            name: t.failures() for name, t in self.tables.items() if not t.all_ok
        }

    def render(self) -> str:
        parts = [t.render() for t in self.tables.values()]
        for name, failure in self.errors.items():
            parts.append(
                f"== {name} ==\nFAILED ({failure.kind} after "
                f"{failure.attempts} attempt(s)): {failure.message}"
            )
        if self.invariants:
            checks = sum(inv.checks for inv in self.invariants.values())
            bad = {n: inv for n, inv in self.invariants.items() if not inv.ok}
            lines = [f"invariant sweep: {checks} check(s) across "
                     f"{len(self.invariants)} entr(ies), "
                     f"{len(bad)} with violations"]
            for name, inv in sorted(bad.items()):
                for violation in inv.violations:
                    lines.append(f"  {name}: {violation}")
            parts.append("\n".join(lines))
        if self.cache_stats is not None:
            parts.append(self.cache_stats.render())
        return "\n\n".join(parts)


def _resolve_names(only: list[str] | None) -> list[str]:
    """Validate the ``only`` filter: known entries, no duplicates."""
    if only is None:
        return list(SUITE)
    names = list(only)
    unknown = set(names) - set(SUITE)
    if unknown:
        raise KeyError(f"unknown suite entries: {sorted(unknown)}")  # EXC001: dict-like lookup
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise SuiteError(
            f"duplicate suite entries in only=: {dupes} — tables are keyed "
            "by name, so a repeated entry would silently collapse into one "
            "result; list each experiment once"
        )
    return names


def run_suite(
    config: ExperimentConfig | None = None,
    only: list[str] | None = None,
    *,
    parallel: int = 1,
    cache: "ResultCache | None" = None,
    timeout_s: float | None = None,
    retries: int = 1,
    monitor: bool = False,
    obs=None,
    backend: str | None = None,
) -> SuiteResult:
    """Execute the (optionally filtered) suite.

    ``parallel=N`` runs cache-miss entries across ``N`` worker processes
    (serial in-process execution remains the default); ``cache`` re-uses
    results of identical (experiment, config, code) combinations.  In
    parallel mode a misbehaving worker is retried up to ``retries``
    times and then reported in :attr:`SuiteResult.errors` instead of
    crashing the suite; in serial mode exceptions propagate unchanged.

    ``monitor=True`` attaches the runtime
    :class:`~repro.lint.monitor.InvariantMonitor` to every machine each
    entry builds and records the sweep in :attr:`SuiteResult.invariants`
    (violations fail :attr:`SuiteResult.all_ok`).  Monitored runs bypass
    the cache entirely — a cached table proves nothing about invariants
    — and cost the sweep's overhead, so monitoring is strictly opt-in.

    ``backend`` selects the simulation backend for every machine the
    suite builds (overriding ``config.backend`` when given).  The
    resolved name is always pinned into the config before cache keys are
    computed, so results produced under different backends — identical
    by construction, but separately provable — never share a cache slot,
    and a run under ``REPRO_SIM_BACKEND`` cannot poison a reference
    cache.

    ``obs`` (a :class:`repro.obs.Obs`) traces and meters the run: a
    ``suite`` span wraps per-experiment spans, every machine built by a
    serial entry is instrumented down to simulator dispatch, and the
    result cache mirrors its counters into the registry.  In parallel
    mode only the parent side (pool phases, per-task windows, cache) is
    observed — the obs bundle never crosses a process boundary.  The
    serialized suite document is independent of ``obs``.
    """
    cfg = config or ExperimentConfig(scale=0.02)
    cfg = replace(cfg, backend=resolve_backend(backend or cfg.backend).name)
    names = _resolve_names(only)
    if parallel < 1:
        raise SuiteError(f"parallel must be >= 1, got {parallel}")
    result = SuiteResult(config=cfg)
    if monitor:
        cache = None
    if obs is not None:
        from repro.obs import effective_obs, mint_trace_id

        obs = effective_obs(obs)
        result.obs = obs
        if obs is not None and obs.tracer.trace_id is None:
            # Content-derived, so identical runs mint identical ids.
            obs.tracer.trace_id = mint_trace_id(
                "suite", cfg.seed, cfg.scale, cfg.sku, cfg.backend, *names
            )
    if obs is not None and cache is not None:
        cache.attach_obs(obs)

    suite_span = (
        obs.tracer.span(
            "suite",
            cat="suite",
            entries=len(names),
            seed=cfg.seed,
            scale=cfg.scale,
            parallel=parallel,
            monitor=monitor,
        )
        if obs is not None
        else nullcontext()
    )
    with suite_span:
        docs: dict[str, dict[str, Any]] = {}
        keys: dict[str, str] = {}
        to_run: list[str] = []
        if cache is not None:
            from repro.cache import cache_key

            result.cache_stats = cache.stats
            for name in names:
                keys[name] = cache_key(name, cfg)
                doc = cache.get(keys[name])
                if doc is not None:
                    docs[name] = doc
                else:
                    to_run.append(name)
        else:
            to_run = list(names)

        if parallel > 1 and len(to_run) > 1:
            if obs is not None:
                # Traced fan-out: each worker runs its own tracer over
                # the real experiment and ships the serialized trace
                # back next to the result document.
                trace_ctx = {"trace_id": obs.tracer.trace_id}
                tasks = [
                    Task(
                        name=name,
                        fn=_execute_entry_traced,
                        args=(name, cfg, monitor, trace_ctx),
                    )
                    for name in to_run
                ]
            else:
                tasks = [
                    Task(
                        name=name, fn=_execute_entry, args=(name, cfg, monitor)
                    )
                    for name in to_run
                ]
            outcomes = run_tasks(
                tasks, jobs=parallel, timeout_s=timeout_s, retries=retries,
                obs=obs,
            )
            for outcome in outcomes:
                if not outcome.ok:
                    result.errors[outcome.name] = outcome.failure
                elif obs is not None:
                    docs[outcome.name] = outcome.value["doc"]
                    result.worker_traces.append(outcome.value["trace"])
                else:
                    docs[outcome.name] = outcome.value
        else:
            for name in to_run:
                if obs is not None:
                    with obs.tracer.span(name, cat="experiment"):
                        docs[name] = _execute_entry(name, cfg, monitor, obs)
                else:
                    docs[name] = _execute_entry(name, cfg, monitor)

        for name in names:
            if name not in docs:
                continue
            doc = docs[name]
            if monitor:
                result.tables[name] = table_from_dict(doc["table"])
                result.invariants[name] = InvariantSummary.from_dict(
                    doc["invariants"]
                )
            else:
                result.tables[name] = table_from_dict(doc)
                if cache is not None and name in to_run:
                    cache.put(keys[name], doc)

    if obs is not None:
        help_entries = "Suite entries by result source"
        executed = sum(1 for n in to_run if n in docs)
        obs.metrics.counter(
            "suite.entries", help_entries, "entries", source="executed"
        ).inc(executed)
        obs.metrics.counter(
            "suite.entries", help_entries, "entries", source="cached"
        ).inc(len(docs) - executed)
        obs.metrics.counter(
            "suite.entries", help_entries, "entries", source="failed"
        ).inc(len(result.errors))
    return result


def suite_to_dict(result: SuiteResult) -> dict[str, Any]:
    """The JSON document for regression tracking.

    The document depends only on the experiment outputs — never on the
    execution mode — so serial, parallel, and cached runs of one
    configuration serialize byte-identically.  Structured pool failures
    add a ``"failures"`` key only when present.
    """
    doc: dict[str, Any] = {
        "seed": int(result.config.seed),
        "scale": float(result.config.scale),
        "sku": str(result.config.sku),
        "all_ok": bool(result.all_ok),
        "experiments": {
            name: table_to_dict(table) for name, table in result.tables.items()
        },
    }
    if result.errors:
        doc["failures"] = {
            name: failure.as_dict() for name, failure in result.errors.items()
        }
    if result.invariants:
        # Present only on monitored runs, so unmonitored documents stay
        # byte-identical to every previously recorded golden snapshot.
        doc["invariants"] = {
            name: inv.as_dict() for name, inv in result.invariants.items()
        }
    return doc


def suite_trace_document(result: SuiteResult, **other_data: Any) -> dict[str, Any]:
    """The merged end-to-end timeline of a traced run.

    Stitches the parent tracer's document (suite span, pool phases,
    per-task lanes, cache events) together with every worker-shipped
    trace from :attr:`SuiteResult.worker_traces` into one pid-remapped
    ``repro.obs/trace`` document — process names are labelled ``suite``
    and per-entry (``fig7_idle_power:host``, ...), and the shared
    ``trace_id`` survives the merge.  Serial traced runs merge trivially
    (one input document), so callers get one output shape either way.
    """
    if result.obs is None:
        raise SuiteError(
            "suite_trace_document needs a traced run — pass obs= to "
            "run_suite"
        )
    from repro.obs import merge_trace_documents

    docs = [result.obs.trace_document()]
    labels: list[str | None] = ["suite"]
    for i, doc in enumerate(result.worker_traces):
        entry = (doc.get("otherData") or {}).get("entry")
        labels.append(str(entry) if entry else f"worker{i}")
        docs.append(doc)
    merged = merge_trace_documents(docs, labels=labels)
    merged["otherData"].update(other_data)
    return merged
