"""Experiment plumbing shared by all reproductions.

:class:`ExperimentConfig` standardizes the knobs every experiment has
(seed, scale factor for sample counts, measurement duration) so benches
can run a fast configuration while tests pin down behaviour at paper
scale where affordable.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Callable, Iterator

from repro.machine import Machine

#: Active machine-construction hooks (see :func:`machine_hook`).
_MACHINE_HOOKS: list[Callable[[Machine], None]] = []


@contextmanager
def machine_hook(hook: Callable[[Machine], None]) -> Iterator[None]:
    """Run ``hook`` on every machine built while the context is active.

    This is how cross-cutting observers (the runtime invariant monitor,
    tracing) reach machines that experiments construct internally —
    every experiment funnels through :meth:`ExperimentConfig.build_machine`.
    Hooks nest; each ``with`` removes exactly the hook it added.
    """
    _MACHINE_HOOKS.append(hook)
    try:
        yield
    finally:
        _MACHINE_HOOKS.remove(hook)


@dataclass(frozen=True)
class ExperimentConfig:
    """Common experiment knobs.

    ``scale`` multiplies the paper's sample counts: 1.0 runs the full
    published methodology (e.g. 100 000 transition samples); benches use
    smaller scales since the distributions converge long before that.
    """

    seed: int = 0
    scale: float = 1.0
    interval_s: float = 10.0
    sku: str = "EPYC 7502"
    n_packages: int = 2
    #: Simulation backend name (repro.sim.backends); None resolves via
    #: REPRO_SIM_BACKEND, then "reference".  Flows into cache keys, so
    #: suite result caches never mix backends.
    backend: str | None = None

    def scaled(self, count: int, minimum: int = 10) -> int:
        """A paper sample count scaled down, but never below ``minimum``."""
        return max(minimum, int(round(count * self.scale)))

    def with_scale(self, scale: float) -> "ExperimentConfig":
        return replace(self, scale=scale)

    def build_machine(self, **kwargs) -> Machine:
        """A fresh machine for this experiment."""
        kwargs.setdefault("backend", self.backend)
        machine = Machine(
            self.sku, n_packages=self.n_packages, seed=self.seed, **kwargs
        )
        for hook in _MACHINE_HOOKS:
            hook(machine)
        return machine
