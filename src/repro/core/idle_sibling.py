"""§V-A: influence of idling hardware threads on core frequencies.

Procedure: thread 0 of a core runs ``while(1);`` with its cpufreq
request at the minimum (1.5 GHz); the sibling thread idles (or is taken
offline) with its request at nominal (2.5 GHz); ``perf stat -e cycles
-I 1000`` observes both.

Findings reproduced:

* the idling sibling reports under 60 000 cycles/s and uses idle states;
* the active thread nevertheless runs at the *sibling's* 2.5 GHz;
* the effect persists with the sibling offline;
* setting the sibling's request to the minimum restores control.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.experiment import ExperimentConfig
from repro.core.report import ComparisonTable
from repro.units import ghz
from repro.workloads import SPIN


@dataclass
class IdleSiblingResult:
    """Observed frequencies/cycle rates in the §V-A scenarios."""

    active_freq_with_idle_sibling_ghz: float
    idle_sibling_cycles_per_s: float
    active_freq_with_offline_sibling_ghz: float
    active_freq_with_low_sibling_ghz: float


class IdleSiblingExperiment:
    """Runs the §V-A scenario."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()

    def measure(self, n_intervals: int = 10) -> IdleSiblingResult:
        machine = self.config.build_machine()
        active_cpu = 0
        sibling_cpu = machine.topology.thread(0).sibling.cpu_id

        machine.os.run(SPIN, [active_cpu])
        machine.os.set_frequency(active_cpu, ghz(1.5))
        machine.os.set_frequency(sibling_cpu, ghz(2.5))

        f_idle = machine.os.perf.mean_freq_hz(active_cpu, count=n_intervals)
        idle_cycles = machine.os.perf.mean_freq_hz(sibling_cpu, count=n_intervals)

        # Sibling offline: the core still honours the offline request.
        machine.os.sysfs.write(
            f"/sys/devices/system/cpu/cpu{sibling_cpu}/online", "0"
        )
        f_offline = machine.os.perf.mean_freq_hz(active_cpu, count=n_intervals)
        machine.os.sysfs.write(
            f"/sys/devices/system/cpu/cpu{sibling_cpu}/online", "1"
        )

        # Remedy: set the unused thread to the minimum frequency.
        machine.os.set_frequency(sibling_cpu, ghz(1.5))
        f_low = machine.os.perf.mean_freq_hz(active_cpu, count=n_intervals)
        machine.shutdown()

        return IdleSiblingResult(
            active_freq_with_idle_sibling_ghz=f_idle / 1e9,
            idle_sibling_cycles_per_s=idle_cycles,
            active_freq_with_offline_sibling_ghz=f_offline / 1e9,
            active_freq_with_low_sibling_ghz=f_low / 1e9,
        )

    def compare_with_paper(self, result: IdleSiblingResult) -> ComparisonTable:
        table = ComparisonTable("§V-A: idle sibling elevates core frequency")
        table.add(
            "active thread runs at sibling's 2.5 GHz",
            2.5,
            result.active_freq_with_idle_sibling_ghz,
            "GHz",
            0.01,
        )
        table.add(
            "idle sibling cycles/s < 60000",
            1.0,
            1.0 if result.idle_sibling_cycles_per_s < 60_000 else 0.0,
            "",
            0.0,
        )
        table.add(
            "offline sibling still defines frequency",
            2.5,
            result.active_freq_with_offline_sibling_ghz,
            "GHz",
            0.01,
        )
        table.add(
            "low sibling request restores 1.5 GHz",
            1.5,
            result.active_freq_with_low_sibling_ghz,
            "GHz",
            0.01,
        )
        return table
