"""§VI-A/§VI-B: idle power staircase (Fig 7) and the offline anomaly.

Procedure (Fig 7): starting from all threads in C2, walk logical CPUs in
numbering order (first threads of package 0's cores, package 1's cores,
then the sibling threads, again by package) moving them into shallower
states; measure full-system AC power for 10 s per configuration:

* C2 -> C1 by disabling C2 in sysfs per CPU;
* C1 -> C0 by pinning an unrolled ``pause`` loop per CPU.

§VI-B: offline the sibling threads instead and observe power stuck at
the C1 level although every *online* thread still idles in C2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.experiment import ExperimentConfig
from repro.core.report import ComparisonTable
from repro.units import ghz
from repro.workloads import PAUSE_LOOP


@dataclass
class IdleStaircaseResult:
    """Power after each step of one sweep."""

    label: str
    steps: list[str] = field(default_factory=list)
    power_w: list[float] = field(default_factory=list)

    def delta(self, i: int) -> float:
        """Power increase of step i over step i-1."""
        return self.power_w[i] - self.power_w[i - 1]


class IdlePowerExperiment:
    """Runs the Fig 7 sweeps and the §VI-B anomaly check."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()

    # ------------------------------------------------------------------

    def measure_baseline_w(self, machine=None) -> float:
        """All threads in C2 (the 99.1 W floor)."""
        machine = machine or self.config.build_machine()
        return machine.measure(self.config.interval_s).ac_mean_w

    def sweep_c1(self, step_cpus: list[int] | None = None) -> IdleStaircaseResult:
        """Move CPUs from C2 to C1 one at a time (sysfs disable of C2)."""
        machine = self.config.build_machine()
        result = IdleStaircaseResult(label="C2 -> C1 sweep")
        result.steps.append("all C2")
        result.power_w.append(machine.measure(self.config.interval_s).ac_mean_w)
        cpus = step_cpus or machine.os.all_cpus()
        for cpu in cpus:
            machine.os.sysfs.write(
                f"/sys/devices/system/cpu/cpu{cpu}/cpuidle/state2/disable", "1"
            )
            result.steps.append(f"cpu{cpu} C1")
            result.power_w.append(machine.measure(self.config.interval_s).ac_mean_w)
        machine.shutdown()
        return result

    def sweep_c0(
        self, freq_ghz: float = 2.5, step_cpus: list[int] | None = None
    ) -> IdleStaircaseResult:
        """Pin pause loops to CPUs one at a time (C0 sweep at ``freq``)."""
        machine = self.config.build_machine()
        machine.os.set_all_frequencies(ghz(freq_ghz))
        result = IdleStaircaseResult(label=f"C2 -> C0 sweep @{freq_ghz} GHz")
        result.steps.append("all C2")
        result.power_w.append(machine.measure(self.config.interval_s).ac_mean_w)
        cpus = step_cpus or machine.os.all_cpus()
        active: list[int] = []
        for cpu in cpus:
            active.append(cpu)
            machine.os.run(PAUSE_LOOP, [cpu])
            result.steps.append(f"{len(active)} active")
            result.power_w.append(machine.measure(self.config.interval_s).ac_mean_w)
        machine.shutdown()
        return result

    # ------------------------------------------------------------------

    def offline_anomaly(self) -> dict[str, float]:
        """§VI-B: power with sibling threads offlined vs. re-onlined.

        Returns the three AC readings: baseline all-C2, with all sibling
        threads offline (anomalous C1-level power), and after explicit
        re-onlining (back to the C2 level).
        """
        machine = self.config.build_machine()
        baseline = machine.measure(self.config.interval_s).ac_mean_w
        n_cores = machine.topology.n_cores
        siblings = [cpu for cpu in machine.os.all_cpus() if cpu >= n_cores]
        for cpu in siblings:
            machine.os.sysfs.write(f"/sys/devices/system/cpu/cpu{cpu}/online", "0")
        offline = machine.measure(self.config.interval_s).ac_mean_w
        for cpu in siblings:
            machine.os.sysfs.write(f"/sys/devices/system/cpu/cpu{cpu}/online", "1")
        restored = machine.measure(self.config.interval_s).ac_mean_w
        machine.shutdown()
        return {"baseline_w": baseline, "offline_w": offline, "restored_w": restored}

    # ------------------------------------------------------------------

    def compare_with_paper(
        self, c1: IdleStaircaseResult, c0: IdleStaircaseResult
    ) -> ComparisonTable:
        table = ComparisonTable("Fig 7: idle power staircase")
        table.add("all C2", 99.1, c1.power_w[0], "W", 0.01)
        table.add("first core C1 delta", 81.2, c1.delta(1), "W", 0.02)
        per_core_c1 = np.diff(c1.power_w[2 : 2 + 16]).mean() if len(c1.power_w) > 18 else np.diff(c1.power_w[2:]).mean()
        table.add("per-core C1 delta", 0.09, float(per_core_c1), "W", 0.25)
        table.add("first active (pause)", 180.4, c0.power_w[1], "W", 0.01)
        if len(c0.power_w) > 3:
            per_core_c0 = float(np.diff(c0.power_w[1:4]).mean())
            table.add("per-core active delta", 0.33, per_core_c0, "W", 0.25)
        return table
