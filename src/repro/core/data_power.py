"""§VII-B: data-dependent power and what RAPL sees of it (Fig 10).

Procedure: unrolled single-instruction blocks on all hardware threads;
each block randomly draws a relative operand Hamming weight from
{0, 0.5, 1}; blocks run 10 s each; RAPL energies are collected between
blocks; ~1000 blocks per weight.  Analysis plots empirical cumulative
distributions per weight (ten random subsets each, to confirm the
distributions are stable).

Expected outcome (the paper's):

* ``vxorps``: full-system AC spreads by 21 W (7.6 %) between weights 0
  and 1, with *no overlap* between the distributions; RAPL averages stay
  within 0.08 % — overlapping, ordering not preserved.
* ``shr`` (shift by zero, operand held): AC within 0.9 %; RAPL core
  within 0.015 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.analysis.stats import ecdf, ks_distance, overlap_fraction
from repro.core.experiment import ExperimentConfig
from repro.core.report import ComparisonTable
from repro.units import ghz
from repro.workloads import instruction_block

WEIGHTS = (0.0, 0.5, 1.0)


@dataclass
class OperandWeightSamples:
    """Per-weight sample arrays for one instrument channel."""

    weight: float
    ac_w: np.ndarray
    rapl_pkg_w: np.ndarray
    rapl_core_w: np.ndarray


@dataclass
class DataPowerResult:
    """The Fig 10 dataset for one instruction."""

    instruction: str
    samples: dict[float, OperandWeightSamples] = field(default_factory=dict)

    # --- summary statistics ------------------------------------------------

    def ac_means(self) -> dict[float, float]:
        return {w: float(s.ac_w.mean()) for w, s in self.samples.items()}

    def rapl_pkg_means(self) -> dict[float, float]:
        return {w: float(s.rapl_pkg_w.mean()) for w, s in self.samples.items()}

    def rapl_core_means(self) -> dict[float, float]:
        return {w: float(s.rapl_core_w.mean()) for w, s in self.samples.items()}

    def ac_spread_w(self) -> float:
        means = self.ac_means()
        return means[1.0] - means[0.0]

    def ac_spread_rel(self) -> float:
        means = self.ac_means()
        return self.ac_spread_w() / means[0.5]

    def rapl_pkg_spread_rel(self) -> float:
        means = self.rapl_pkg_means()
        return (max(means.values()) - min(means.values())) / means[0.5]

    def rapl_core_spread_rel(self) -> float:
        means = self.rapl_core_means()
        return (max(means.values()) - min(means.values())) / means[0.5]

    def ac_overlap(self) -> float:
        """Distribution overlap of the extreme weights' AC samples."""
        return overlap_fraction(self.samples[0.0].ac_w, self.samples[1.0].ac_w)

    def rapl_pkg_overlap(self) -> float:
        return overlap_fraction(
            self.samples[0.0].rapl_pkg_w, self.samples[1.0].rapl_pkg_w
        )

    def ac_ks(self) -> float:
        """KS distance of the extreme weights' AC samples (~1 = separated)."""
        return ks_distance(self.samples[0.0].ac_w, self.samples[1.0].ac_w)

    def rapl_pkg_ks(self) -> float:
        """KS distance of the extreme weights' RAPL samples (small = overlap)."""
        return ks_distance(self.samples[0.0].rapl_pkg_w, self.samples[1.0].rapl_pkg_w)

    def ecdf_subsets(
        self, weight: float, channel: str = "ac", n_subsets: int = 10, seed: int = 0
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Fig 10's ten-random-subset ECDFs for one weight/channel."""
        arr = getattr(self.samples[weight], {"ac": "ac_w", "pkg": "rapl_pkg_w", "core": "rapl_core_w"}[channel])
        rng = np.random.default_rng(seed)
        perm = rng.permutation(arr.size)
        return [ecdf(arr[perm[k::n_subsets]]) for k in range(n_subsets)]


class DataPowerExperiment:
    """Runs the Fig 10 methodology."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()

    def measure(
        self,
        instruction: str = "vxorps",
        n_blocks: int | None = None,
        block_s: float | None = None,
    ) -> DataPowerResult:
        cfg = self.config
        n = cfg.scaled(3000, minimum=90) if n_blocks is None else n_blocks
        dur = cfg.interval_s if block_s is None else block_s
        machine = cfg.build_machine()
        machine.os.set_all_frequencies(ghz(2.5))
        rng = machine.rng.child(f"data-power-{instruction}")

        # Pre-heat at the mid weight so the block sequence starts settled.
        machine.os.run(instruction_block(instruction, 0.5), machine.os.all_cpus())
        machine.preheat()

        acc: dict[float, dict[str, list[float]]] = {
            w: {"ac": [], "pkg": [], "core": []} for w in WEIGHTS
        }
        for _ in range(n):
            weight = float(rng.choice(WEIGHTS))
            machine.os.run(
                instruction_block(instruction, weight), machine.os.all_cpus()
            )
            rec = machine.measure(dur)
            acc[weight]["ac"].append(rec.ac_mean_w)
            acc[weight]["pkg"].append(float(sum(rec.rapl_pkg_w)))
            acc[weight]["core"].append(float(sum(rec.rapl_core_w)))
        machine.shutdown()

        result = DataPowerResult(instruction=instruction)
        for w in WEIGHTS:
            result.samples[w] = OperandWeightSamples(
                weight=w,
                ac_w=np.asarray(acc[w]["ac"]),
                rapl_pkg_w=np.asarray(acc[w]["pkg"]),
                rapl_core_w=np.asarray(acc[w]["core"]),
            )
        return result

    # ------------------------------------------------------------------

    def compare_with_paper(self, vxorps: DataPowerResult, shr: DataPowerResult | None = None) -> ComparisonTable:
        table = ComparisonTable("Fig 10: operand-dependent power")
        table.add("vxorps AC spread", 21.0, vxorps.ac_spread_w(), "W", 0.10)
        table.add("vxorps AC spread rel", 0.076, vxorps.ac_spread_rel(), "", 0.10)
        table.add("vxorps AC overlap (none)", 0.0, vxorps.ac_overlap(), "", 0.02)
        table.add(
            "vxorps RAPL pkg spread rel (< 0.08 %)",
            0.0,
            vxorps.rapl_pkg_spread_rel(),
            "",
            0.0008,
        )
        table.add(
            "vxorps RAPL distributions overlap strongly",
            1.0,
            1.0 if vxorps.rapl_pkg_overlap() > 0.5 else 0.0,
            "",
            0.0,
        )
        # KS sharpening of the same claims: AC fully separated (D = 1),
        # RAPL distinguishable-but-overlapping (0 < D << 1) — the paper's
        # "conceivable ... to leak information ... through very small
        # differences in the distribution".
        table.add("vxorps AC KS distance", 1.0, vxorps.ac_ks(), "", 0.01)
        table.add(
            "vxorps RAPL KS small but nonzero",
            1.0,
            1.0 if 0.0 < vxorps.rapl_pkg_ks() < 0.6 else 0.0,
            "",
            0.0,
        )
        if shr is not None:
            table.add("shr AC spread rel (< 0.9 %)", 0.0, shr.ac_spread_rel(), "", 0.009)
            table.add(
                "shr RAPL core spread rel (< 0.015 %)",
                0.0,
                shr.rapl_core_spread_rel(),
                "",
                0.00015,
            )
        return table
