"""Idle-governor study: wake-up rate vs. system power.

§VI-A established the cost of shallow idle states; the menu governor
(:mod:`repro.oslayer.cpuidle`) decides *when* a CPU idles shallowly.
This experiment sweeps the wake-up rate of a single pinned interrupt
source and records system power, exposing the break-even cliff: below
the C2 target-residency rate the system keeps its deep-sleep level,
above it one CPU holds C1 and the full +81 W wake penalty lands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.experiment import ExperimentConfig


@dataclass
class GovernorSweepResult:
    rates_hz: list[float] = field(default_factory=list)
    power_w: list[float] = field(default_factory=list)
    selected_state: list[str] = field(default_factory=list)

    def cliff_rate_hz(self) -> float:
        """First swept rate at which the CPU stops reaching C2."""
        for rate, state in zip(self.rates_hz, self.selected_state):
            if state != "C2":
                return rate
        # EXC001: search miss, mirrors stdlib lookup semantics
        raise LookupError("no cliff within the swept range")


class IdleGovernorExperiment:
    """Sweeps a pinned wake-up source's rate."""

    DEFAULT_RATES_HZ = (10.0, 100.0, 1_000.0, 5_000.0, 9_000.0, 11_000.0,
                        20_000.0, 100_000.0)

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()

    def measure(self, rates_hz: tuple[float, ...] | None = None, cpu_id: int = 5) -> GovernorSweepResult:
        rates = rates_hz or self.DEFAULT_RATES_HZ
        result = GovernorSweepResult()
        for rate in rates:
            machine = self.config.build_machine()
            machine.os.register_interrupt("swept_source", cpu_id, rate)
            rec = machine.measure(self.config.interval_s)
            result.rates_hz.append(rate)
            result.power_w.append(rec.ac_mean_w)
            result.selected_state.append(
                machine.topology.thread(cpu_id).effective_cstate
            )
            machine.shutdown()
        return result

    def breakeven_matches_governor_table(self, result: GovernorSweepResult) -> bool:
        """The observed cliff must sit at the governor's C2 residency."""
        from repro.oslayer.cpuidle import MenuGovernor
        from repro.oslayer.interrupts import InterruptModel

        nominal = MenuGovernor(InterruptModel()).breakeven_rate_hz("C2")
        cliff = result.cliff_rate_hz()
        below = [r for r in result.rates_hz if r < nominal]
        return (not below) or cliff >= max(below)
