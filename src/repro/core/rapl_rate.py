"""§VII: RAPL update-rate measurement.

"We measured an update rate of 1 ms for RAPL by polling the MSRs via the
msr kernel module."  The experiment polls the package energy MSR in a
tight loop (event mode, microsecond steps) and records the intervals
between counter *changes*; the median interval is the update period.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.experiment import ExperimentConfig
from repro.core.report import ComparisonTable
from repro.msr.definitions import MSR_PKG_ENERGY_STAT
from repro.units import ghz, ns_to_ms, us
from repro.workloads import SPIN


@dataclass
class RaplRateResult:
    """Observed intervals between counter updates."""

    intervals_ms: np.ndarray

    @property
    def median_ms(self) -> float:
        return float(np.median(self.intervals_ms))


class RaplUpdateRateExperiment:
    """Polls the package energy MSR for counter-change intervals."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()

    def measure(
        self, n_updates: int = 50, poll_interval_us: float = 20.0
    ) -> RaplRateResult:
        machine = self.config.build_machine()
        # Something must burn energy or the counter may stand still for
        # longer than an update period.
        machine.os.set_all_frequencies(ghz(2.5))
        machine.os.run(SPIN, machine.os.first_thread_cpus())
        machine.enable_event_mode(rapl_ticks=True)

        sim = machine.sim
        poll = us(poll_interval_us)
        last_raw = machine.msr.read(0, MSR_PKG_ENERGY_STAT)
        last_change_ns = sim.now_ns
        intervals: list[float] = []
        guard = 0
        while len(intervals) < n_updates:
            sim.run_for(poll)
            raw = machine.msr.read(0, MSR_PKG_ENERGY_STAT)
            if raw != last_raw:
                intervals.append(ns_to_ms(sim.now_ns - last_change_ns))
                last_change_ns = sim.now_ns
                last_raw = raw
            guard += 1
            if guard > n_updates * 1000:
                break
        machine.shutdown()
        # The first interval is phase-truncated; drop it.
        return RaplRateResult(intervals_ms=np.asarray(intervals[1:]))

    def compare_with_paper(self, result: RaplRateResult) -> ComparisonTable:
        table = ComparisonTable("RAPL MSR update rate")
        table.add("update period", 1.0, result.median_ms, "ms", 0.05)
        return table
