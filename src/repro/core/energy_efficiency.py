"""Energy-to-solution and optimal-frequency study.

The paper's introduction frames all its mechanisms as "the foundation to
improve the complex interactions between applications, operating
systems, and independent hardware control for performance and energy
efficiency".  This study closes that loop on the simulated machine: for
a fixed amount of work, sweep the core frequency and record runtime,
energy-to-solution and energy-delay product (EDP).

Expected structure (textbook, but here with the paper's calibrated
constants): compute-bound work minimizes energy near the top frequency
on this machine — the ~180 W awake floor dominates, so finishing fast
wins; memory-bound work barely slows down when downclocked, so its
optimum sits at the bottom frequency.  The crossover is exactly the
knowledge a DVFS runtime needs (`examples/dvfs_tuner.py`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.experiment import ExperimentConfig
from repro.units import ghz
from repro.workloads import SPIN, STREAM_TRIAD, Workload


@dataclass(frozen=True)
class EfficiencyPoint:
    """One (workload, frequency) run over a fixed work quantum."""

    workload: str
    freq_ghz: float
    runtime_s: float
    energy_j: float

    @property
    def edp(self) -> float:
        """Energy-delay product."""
        return self.energy_j * self.runtime_s


@dataclass
class EfficiencyResult:
    points: list[EfficiencyPoint] = field(default_factory=list)

    def of_workload(self, name: str) -> list[EfficiencyPoint]:
        return sorted(
            (p for p in self.points if p.workload == name), key=lambda p: p.freq_ghz
        )

    def optimal_freq_ghz(self, name: str, metric: str = "energy_j") -> float:
        pts = self.of_workload(name)
        if not pts:
            raise KeyError(f"no points for {name!r}")  # EXC001: dict-like lookup
        best = min(pts, key=lambda p: getattr(p, metric))
        return best.freq_ghz


class EnergyEfficiencyExperiment:
    """Frequency sweep at fixed work."""

    FREQS_GHZ = (1.5, 2.2, 2.5)

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()

    def measure(
        self,
        workloads: tuple[Workload, ...] = (SPIN, STREAM_TRIAD),
        *,
        n_cores: int = 64,
        work_units: float = 1.0,
    ) -> EfficiencyResult:
        """Sweep; ``work_units`` is runtime in seconds at nominal clock."""
        result = EfficiencyResult()
        for wl in workloads:
            for f_ghz in self.FREQS_GHZ:
                machine = self.config.build_machine()
                cpus = machine.os.first_thread_cpus(n_cores)
                machine.os.set_all_frequencies(ghz(f_ghz))
                machine.os.run(wl, cpus)
                machine.preheat()
                applied = machine.topology.thread(cpus[0]).core.applied_freq_hz
                # runtime scales with the frequency-sensitive share only
                speed = wl.freq_scaling * (applied / ghz(2.5)) + (
                    1.0 - wl.freq_scaling
                )
                runtime = work_units / speed
                power = machine.power_model.system_power_w(
                    machine, machine.thermal_state.temps_c
                )
                result.points.append(
                    EfficiencyPoint(
                        workload=wl.name,
                        freq_ghz=f_ghz,
                        runtime_s=runtime,
                        energy_j=power * runtime,
                    )
                )
                machine.shutdown()
        return result
