"""§V-E: frequency limitations for high-throughput workloads (Fig 6).

Procedure: FIRESTARTER on all cores (one or two threads per core),
15-minute pre-heat, two minutes at nominal frequency; frequency and
throughput via ``perf stat`` (1 s intervals, first 5 s / last 2 s
trimmed), power via the external AC measurement and RAPL package
counters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.experiment import ExperimentConfig
from repro.core.report import ComparisonTable
from repro.instruments.timeline import inner_window_mean
from repro.units import ghz
from repro.workloads import FIRESTARTER


@dataclass
class ThroughputResult:
    """One SMT configuration's Fig 6 measurements."""

    smt: bool
    mean_freq_ghz: float
    std_freq_mhz: float
    ipc_per_core: float
    ipc_std: float
    ac_power_w: float
    rapl_pkg_w: list[float]

    @property
    def rapl_per_pkg_w(self) -> float:
        return float(np.mean(self.rapl_pkg_w))


class ThroughputLimitExperiment:
    """Runs the §V-E methodology for one or both SMT configurations."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()

    def measure(self, *, smt: bool, duration_s: float = 120.0) -> ThroughputResult:
        cfg = self.config
        machine = cfg.build_machine()
        cpus = machine.os.all_cpus() if smt else machine.os.first_thread_cpus()
        machine.os.set_all_frequencies(ghz(2.5))  # nominal
        machine.os.run(FIRESTARTER, cpus)
        machine.preheat()  # the 15 min warm-up

        # perf stat, 1 s intervals over the run
        n_intervals = max(10, int(duration_s))
        monitored = machine.os.first_thread_cpus()
        samples = machine.os.perf.sample(monitored, 1.0, n_intervals)
        # trim first 5 s and last 2 s (§V-E)
        samples = samples[5:-2]
        freqs = np.array([[s.freq_hz for s in row] for row in samples])
        # per-core IPC: both threads' instructions over core cycles
        smt_threads = 2 if smt else 1
        ipcs = np.array(
            [[s.ipc * smt_threads for s in row] for row in samples]
        )

        rec = machine.measure(10.0)
        ac = inner_window_mean(rec.ac, skip_head_s=1.0, skip_tail_s=1.0)
        machine.shutdown()
        return ThroughputResult(
            smt=smt,
            mean_freq_ghz=float(freqs.mean()) / 1e9,
            std_freq_mhz=float(freqs.mean(axis=1).std(ddof=1)) / 1e6,
            ipc_per_core=float(ipcs.mean()),
            ipc_std=float(ipcs.mean(axis=1).std(ddof=1)),
            ac_power_w=ac,
            rapl_pkg_w=rec.rapl_pkg_w,
        )

    # ------------------------------------------------------------------

    def compare_with_paper(self, two_thread: ThroughputResult, one_thread: ThroughputResult) -> ComparisonTable:
        table = ComparisonTable("Fig 6: FIRESTARTER throughput limits (EDC)")
        table.add("freq 2 threads/core", 2.0, two_thread.mean_freq_ghz, "GHz", 0.02)
        table.add("freq 1 thread/core", 2.1, one_thread.mean_freq_ghz, "GHz", 0.02)
        table.add("IPC 2 threads/core", 3.56, two_thread.ipc_per_core, "inst/cyc", 0.02)
        table.add("IPC 1 thread/core", 3.23, one_thread.ipc_per_core, "inst/cyc", 0.02)
        table.add("AC power 2 threads", 509.0, two_thread.ac_power_w, "W", 0.02)
        table.add("AC power 1 thread", 489.0, one_thread.ac_power_w, "W", 0.02)
        table.add("RAPL per package", 170.0, two_thread.rapl_per_pkg_w, "W", 0.03)
        return table

    def frequency_sweep(
        self, *, smt: bool = True, requested_ghz: tuple[float, ...] = (1.5, 2.2, 2.5)
    ) -> list[tuple[float, float, float]]:
        """Requested vs applied frequency and AC power under FIRESTARTER.

        Shows *where* the EDC limit starts to bind: requests at or below
        the throttle point are honoured exactly; above it they are all
        clipped to the same operating point — which is why §V-E notes
        that on AMD "measurements are required to determine the actual
        frequency ranges" (there is no documented AVX-frequency table to
        read the clip point from).
        """
        rows = []
        for req in requested_ghz:
            machine = self.config.build_machine()
            cpus = machine.os.all_cpus() if smt else machine.os.first_thread_cpus()
            machine.os.set_all_frequencies(ghz(req))
            machine.os.run(FIRESTARTER, cpus)
            machine.preheat()
            rec = machine.measure(10.0)
            applied = machine.topology.thread(0).core.applied_freq_hz / 1e9
            rows.append((req, applied, rec.ac_mean_w))
            machine.shutdown()
        return rows

    def core_count_scaling(self, skus: list[str] | None = None) -> dict[str, float]:
        """§VIII future work: throttled frequency vs. core count.

        The authors "expect a more severe impact, since the ratio of
        compute to I/O resources is higher" on bigger parts — this sweep
        quantifies that on the SKU catalogue.
        """
        from repro.machine import Machine

        results: dict[str, float] = {}
        for name in skus or ["EPYC 7252", "EPYC 7302", "EPYC 7502", "EPYC 7742"]:
            machine = Machine(name, n_packages=2, seed=self.config.seed)
            machine.os.set_all_frequencies(max(machine.sku.available_freqs_hz))
            machine.os.run(FIRESTARTER, machine.os.all_cpus())
            core0 = machine.topology.thread(0).core
            results[name] = core0.applied_freq_hz / 1e9
            machine.shutdown()
        return results
