"""Linux-style logical CPU enumeration.

On the paper's Ubuntu 18.04 system, logical CPUs number the *first*
hardware thread of every core across package 0, then package 1, then the
*second* (SMT sibling) threads in the same order.  The idle-power sweep in
§VI-A depends on exactly this order ("following the logical CPU numbering
... the hardware thread of each core within the first processor package,
the second processor package, and then the second hardware threads of each
core, again grouped by package").
"""

from __future__ import annotations

from repro.topology.components import SystemTopology


def linux_cpu_numbering(topo: SystemTopology) -> None:
    """Assign ``cpu_id`` to every hardware thread and fill ``topo.cpus``.

    Ordering: SMT index is the major key, then package, then core position
    within the package.  For a 2x32-core system this yields cpu0..cpu31 =
    thread 0 of package 0 cores, cpu32..63 = thread 0 of package 1 cores,
    cpu64..95 / cpu96..127 = the sibling threads.
    """
    topo.cpus.clear()
    next_id = 0
    for smt_index in (0, 1):
        for pkg in topo.packages:
            for core in pkg.cores():
                thread = core.threads[smt_index]
                thread.cpu_id = next_id
                topo.cpus[next_id] = thread
                next_id += 1


def cpu_ids_in_sweep_order(topo: SystemTopology) -> list[int]:
    """CPU ids in the §VI-A sweep order (== ascending cpu_id by design)."""
    return sorted(topo.cpus)
