"""Hardware topology model of AMD "Rome" (Zen 2) systems.

The component tree mirrors the modular design the paper describes in
§III-A: hardware threads within cores, four cores per Core Complex (CCX),
two CCXs per Core Complex Die (CCD), up to eight CCDs attached to one
I/O die per package, and one or two packages per system.

Components carry *identity and mutable state* (requested frequencies,
C-state bookkeeping, online flags); the mechanisms that act on that state
live in :mod:`repro.pstate`, :mod:`repro.cstate`, :mod:`repro.smu` etc.
"""

from repro.topology.components import (
    CCD,
    CCX,
    Core,
    HardwareThread,
    IODie,
    Package,
    SystemTopology,
)
from repro.topology.skus import SKU, SKUS, build_topology, sku_by_name
from repro.topology.enumeration import linux_cpu_numbering
from repro.topology.numa import NumaConfig, NumaNode, build_numa_nodes

__all__ = [
    "HardwareThread",
    "Core",
    "CCX",
    "CCD",
    "IODie",
    "Package",
    "SystemTopology",
    "SKU",
    "SKUS",
    "sku_by_name",
    "build_topology",
    "linux_cpu_numbering",
    "NumaConfig",
    "NumaNode",
    "build_numa_nodes",
]
