"""SKU catalogue and topology builder.

The paper's testbed is a dual-socket EPYC 7502 (32 cores per package in
4 CCDs, §IV).  We also carry neighbouring Rome SKUs so the future-work
bench (throttling vs. core count, §VIII) can sweep the compute-to-I/O
ratio the authors call out.

Frequencies: the test system exposes three P-states — 1.5, 2.2 and
2.5 GHz — with 2.5 GHz being the nominal ("reference") frequency.  Boost
ceilings are included for completeness; the paper runs with boost mostly
disabled and finds it has almost no influence under FIRESTARTER (§V-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.topology.components import SystemTopology
from repro.topology.enumeration import linux_cpu_numbering
from repro.units import ghz


@dataclass(frozen=True)
class SKU:
    """Static description of a processor model."""

    name: str
    n_ccds: int
    cores_per_ccx: int
    nominal_freq_hz: float
    boost_freq_hz: float
    tdp_w: float
    #: Package power tracking limit used by the SMU power loop.
    ppt_w: float
    #: Per-package electrical design current limit (A) used by the EDC
    #: manager; calibrated so FIRESTARTER throttles to the Fig 6 points.
    edc_limit_a: float

    @property
    def n_cores(self) -> int:
        return self.n_ccds * 2 * self.cores_per_ccx

    @property
    def available_freqs_hz(self) -> tuple[float, ...]:
        """The ACPI P-state frequencies exposed to the OS (paper §IV)."""
        return (ghz(1.5), ghz(2.2), self.nominal_freq_hz)


#: Catalogue of Rome SKUs used across experiments and benches.
SKUS: dict[str, SKU] = {
    "EPYC 7502": SKU(
        name="EPYC 7502",
        n_ccds=4,
        cores_per_ccx=4,
        nominal_freq_hz=ghz(2.5),
        boost_freq_hz=ghz(3.35),
        tdp_w=180.0,
        ppt_w=200.0,
        edc_limit_a=156.8,
    ),
    "EPYC 7742": SKU(
        name="EPYC 7742",
        n_ccds=8,
        cores_per_ccx=4,
        nominal_freq_hz=ghz(2.25),
        boost_freq_hz=ghz(3.4),
        tdp_w=225.0,
        ppt_w=240.0,
        edc_limit_a=225.0,
    ),
    "EPYC 7302": SKU(
        name="EPYC 7302",
        n_ccds=4,
        cores_per_ccx=2,
        nominal_freq_hz=ghz(3.0),
        boost_freq_hz=ghz(3.3),
        tdp_w=155.0,
        ppt_w=170.0,
        edc_limit_a=140.0,
    ),
    "EPYC 7252": SKU(
        name="EPYC 7252",
        n_ccds=2,
        cores_per_ccx=2,
        nominal_freq_hz=ghz(3.1),
        boost_freq_hz=ghz(3.2),
        tdp_w=120.0,
        ppt_w=135.0,
        edc_limit_a=120.0,
    ),
}


def sku_by_name(name: str) -> SKU:
    """Look up a SKU, with a helpful error listing known models."""
    try:
        return SKUS[name]
    except KeyError:
        known = ", ".join(sorted(SKUS))
        raise ConfigurationError(f"unknown SKU {name!r}; known: {known}") from None


def build_topology(sku: SKU | str = "EPYC 7502", n_packages: int = 2) -> SystemTopology:
    """Build an enumerated :class:`SystemTopology` for ``sku``.

    Logical CPU numbers follow the Linux scheme (first threads of all
    cores across packages, then sibling threads) — see
    :func:`repro.topology.enumeration.linux_cpu_numbering`.
    """
    if isinstance(sku, str):
        sku = sku_by_name(sku)
    topo = SystemTopology(
        n_packages=n_packages,
        n_ccds=sku.n_ccds,
        cores_per_ccx=sku.cores_per_ccx,
        sku_name=sku.name,
    )
    linux_cpu_numbering(topo)
    # All cores start at the minimum available frequency, matching the
    # paper's baseline ("other cores ... set to the minimum frequency").
    for thread in topo.threads():
        thread.requested_freq_hz = min(sku.available_freqs_hz)
    for core in topo.cores():
        core.applied_freq_hz = min(sku.available_freqs_hz)
    for ccx in topo.ccxs():
        ccx.l3_freq_hz = min(sku.available_freqs_hz)
    return topo
