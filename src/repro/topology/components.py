"""Component classes for the Rome topology tree.

Naming follows the paper (§III-A) and AMD's documents: CCX = Core Complex
(4 cores sharing 16 MiB of L3), CCD = Core Complex Die (2 CCXs), I/O die =
central die carrying memory controllers and Infinity Fabric switches.

State conventions
-----------------
* ``HardwareThread.requested_freq_hz`` is the cpufreq (P-state) request of
  the *logical CPU*.  The paper's §V-A finding is that the effective core
  clock honours the **maximum** request over the core's threads even if a
  thread idles or is offline; the resolution itself happens in
  :class:`repro.pstate.resolver.FrequencyResolver`.
* ``HardwareThread.online`` models the sysfs ``cpuN/online`` switch.
* C-state bookkeeping (requested vs. effective idle state) lives on the
  thread; core/package aggregation lives in
  :class:`repro.cstate.controller.CStateController`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.errors import TopologyError
from repro.units import ghz

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.base import Workload


class HardwareThread:
    """One SMT hardware thread (a Linux "logical CPU")."""

    def __init__(self, core: "Core", smt_index: int) -> None:
        self.core = core
        self.smt_index = smt_index
        #: Linux logical CPU number; assigned by the enumerator.
        self.cpu_id: int = -1
        #: cpufreq target frequency for this logical CPU.
        self.requested_freq_hz: float = ghz(1.5)
        #: sysfs cpuN/online
        self.online: bool = True
        #: Name of the C-state the OS most recently requested for this
        #: thread ("C0" while something runs).  Maintained by the
        #: C-state controller.
        self.requested_cstate: str = "C2"
        #: The idle state actually in effect (can differ from the request,
        #: e.g. the offline-thread anomaly parks threads in C1).
        self.effective_cstate: str = "C2"
        #: Currently bound workload, if any.
        self.workload: Optional["Workload"] = None
        #: Free-running counters (advanced by the perf model; halted in C1+).
        self.aperf_cycles: float = 0.0
        self.mperf_cycles: float = 0.0
        self.instructions: float = 0.0
        #: Residency accounting (sysfs cpuidle stateN/time + usage).
        self.cstate_time_ns: dict[str, float] = {"C0": 0.0, "C1": 0.0, "C2": 0.0}
        self.cstate_usage: dict[str, int] = {"C0": 0, "C1": 0, "C2": 0}

    @property
    def sibling(self) -> "HardwareThread":
        """The other hardware thread of the same core."""
        return self.core.threads[1 - self.smt_index]

    @property
    def is_active(self) -> bool:
        """True when a workload occupies the thread (C0)."""
        return self.online and self.workload is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<HardwareThread cpu{self.cpu_id} core={self.core.global_index}>"


class Core:
    """A Zen 2 core: two SMT threads, private L1/L2, one clock domain."""

    def __init__(self, ccx: "CCX", index_in_ccx: int) -> None:
        self.ccx = ccx
        self.index_in_ccx = index_in_ccx
        #: Global core index across the whole system (assigned by builder).
        self.global_index: int = -1
        self.threads = (HardwareThread(self, 0), HardwareThread(self, 1))
        #: Frequency currently applied by the SMU to this core's domain.
        self.applied_freq_hz: float = ghz(1.5)
        #: Target the SMU is currently transitioning towards (None if settled).
        self.pending_freq_hz: float | None = None

    @property
    def package(self) -> "Package":
        return self.ccx.ccd.package

    @property
    def has_active_thread(self) -> bool:
        return any(t.is_active for t in self.threads)

    @property
    def deepest_common_cstate_is(self) -> str:
        """Shallowest effective C-state across the two threads.

        The *core* can only clock/power gate as deep as its shallowest
        thread; "C0" < "C1" < "C2" in depth (string compare works for
        these names, but we keep it explicit)."""
        order = {"C0": 0, "C1": 1, "C2": 2}
        shallowest = min(self.threads, key=lambda t: order[t.effective_cstate])
        return shallowest.effective_cstate

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Core {self.global_index} ccx={self.ccx.global_index}>"


class CCX:
    """Core Complex: four cores sharing a 16 MiB L3 (§III-A)."""

    L3_SIZE_BYTES = 16 * 1024 * 1024
    L3_SLICES = 4

    def __init__(self, ccd: "CCD", index_in_ccd: int, n_cores: int = 4) -> None:
        if not 1 <= n_cores <= 4:
            raise TopologyError(f"CCX supports 1..4 cores, got {n_cores}")
        self.ccd = ccd
        self.index_in_ccd = index_in_ccd
        self.global_index: int = -1
        self.cores = tuple(Core(self, i) for i in range(n_cores))
        #: L3 clock currently applied (follows max core clock; see
        #: :class:`repro.pstate.resolver.FrequencyResolver`).
        self.l3_freq_hz: float = ghz(1.5)

    @property
    def package(self) -> "Package":
        return self.ccd.package

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CCX {self.global_index}>"


class CCD:
    """Core Complex Die: two CCXs and one on-die SMU."""

    def __init__(self, package: "Package", index_in_package: int, cores_per_ccx: int = 4) -> None:
        self.package = package
        self.index_in_package = index_in_package
        self.global_index: int = -1
        self.ccxs = (CCX(self, 0, cores_per_ccx), CCX(self, 1, cores_per_ccx))

    def cores(self) -> Iterator[Core]:
        for ccx in self.ccxs:
            yield from ccx.cores

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CCD {self.global_index}>"


class IODie:
    """The central I/O die: IF switches, memory controllers, xGMI/PCIe.

    Carries its own voltage/frequency domain (fclk); the control policy
    lives in :class:`repro.iodie.fclk.FclkController`.
    """

    #: Number of unified memory controllers (UMC pairs -> 8 DDR4 channels).
    N_MEMORY_CHANNELS = 8
    #: IF switches connecting CCD pairs + a UMC each (quadrants).
    N_QUADRANTS = 4

    def __init__(self, package: "Package") -> None:
        self.package = package
        #: Applied I/O die clock (fclk).
        self.fclk_hz: float = ghz(1.467)
        #: Memory clock (MEMCLK, "DDR4-3200" = 1.6 GHz).
        self.memclk_hz: float = ghz(1.6)
        #: True when the die has dropped into its idle low-power state
        #: (possible only during whole-system sleep; §VI-A).
        self.low_power: bool = False


class Package:
    """One socket: up to eight CCDs around an I/O die."""

    def __init__(self, system: "SystemTopology", index: int, n_ccds: int, cores_per_ccx: int) -> None:
        self.system = system
        self.index = index
        self.io_die = IODie(self)
        self.ccds = tuple(CCD(self, i, cores_per_ccx) for i in range(n_ccds))

    def cores(self) -> Iterator[Core]:
        for ccd in self.ccds:
            yield from ccd.cores()

    def ccxs(self) -> Iterator[CCX]:
        for ccd in self.ccds:
            yield from ccd.ccxs

    def threads(self) -> Iterator[HardwareThread]:
        for core in self.cores():
            yield from core.threads

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Package {self.index}>"


class SystemTopology:
    """The full machine: one or two packages plus lookup tables."""

    def __init__(self, n_packages: int, n_ccds: int, cores_per_ccx: int, sku_name: str = "custom") -> None:
        if n_packages not in (1, 2):
            raise TopologyError(f"1 or 2 packages supported, got {n_packages}")
        if not 1 <= n_ccds <= 8:
            raise TopologyError(f"1..8 CCDs per package supported, got {n_ccds}")
        self.sku_name = sku_name
        self.packages = tuple(
            Package(self, i, n_ccds, cores_per_ccx) for i in range(n_packages)
        )
        self._assign_global_indices()
        #: cpu_id -> HardwareThread; populated by the enumerator.
        self.cpus: dict[int, HardwareThread] = {}

    def _assign_global_indices(self) -> None:
        core_idx = ccx_idx = ccd_idx = 0
        for pkg in self.packages:
            for ccd in pkg.ccds:
                ccd.global_index = ccd_idx
                ccd_idx += 1
                for ccx in ccd.ccxs:
                    ccx.global_index = ccx_idx
                    ccx_idx += 1
                    for core in ccx.cores:
                        core.global_index = core_idx
                        core_idx += 1

    # --- iteration helpers -------------------------------------------------

    def cores(self) -> Iterator[Core]:
        for pkg in self.packages:
            yield from pkg.cores()

    def ccxs(self) -> Iterator[CCX]:
        for pkg in self.packages:
            yield from pkg.ccxs()

    def threads(self) -> Iterator[HardwareThread]:
        for core in self.cores():
            yield from core.threads

    def thread(self, cpu_id: int) -> HardwareThread:
        """Look up a hardware thread by its Linux logical CPU number."""
        try:
            return self.cpus[cpu_id]
        except KeyError:
            raise TopologyError(f"no such logical CPU: {cpu_id}") from None

    @property
    def n_cores(self) -> int:
        return sum(1 for _ in self.cores())

    @property
    def n_threads(self) -> int:
        return sum(1 for _ in self.threads())

    def core_by_global_index(self, index: int) -> Core:
        for core in self.cores():
            if core.global_index == index:
                return core
        raise TopologyError(f"no such core: {index}")

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<SystemTopology {self.sku_name}: {len(self.packages)} pkg, "
            f"{self.n_cores} cores, {self.n_threads} threads>"
        )
