"""NUMA topology for Rome.

The I/O die carries four IF switch "quadrants", each attaching up to two
CCDs and one memory controller with two DDR4 channels (§III-A).  Depending
on the BIOS "NUMA per socket" (NPS) setting the system exposes one, two or
four NUMA nodes per package.  The paper's testbed uses "2-Channel
Interleaving (per Quadrant)" — NPS4 — giving four nodes per socket, each
interleaving its two local channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigurationError
from repro.topology.components import CCD, Package, SystemTopology


class NumaConfig(Enum):
    """BIOS NUMA-per-socket options (AMD doc 56338)."""

    NPS1 = 1
    NPS2 = 2
    NPS4 = 4


@dataclass
class NumaNode:
    """One NUMA node: a set of CCDs plus their local memory channels."""

    node_id: int
    package_index: int
    ccds: tuple[CCD, ...]
    memory_channels: tuple[int, ...]

    @property
    def n_cores(self) -> int:
        return sum(1 for ccd in self.ccds for _ in ccd.cores())


def build_numa_nodes(
    topo: SystemTopology, config: NumaConfig = NumaConfig.NPS4
) -> list[NumaNode]:
    """Partition each package's CCDs and channels into NUMA nodes.

    Quadrant q of a package owns memory channels (2q, 2q+1) and the CCDs
    attached to its IF switch.  With fewer CCDs than quadrants (e.g. the
    7502's 4 CCDs), each quadrant holds one CCD.
    """
    nodes: list[NumaNode] = []
    node_id = 0
    for pkg in topo.packages:
        nodes_per_pkg = config.value
        n_ccds = len(pkg.ccds)
        if n_ccds % nodes_per_pkg != 0 and nodes_per_pkg > n_ccds:
            raise ConfigurationError(
                f"{config.name} needs at least {nodes_per_pkg} CCDs; package has {n_ccds}"
            )
        ccds_per_node = max(1, n_ccds // nodes_per_pkg)
        channels_per_node = 8 // nodes_per_pkg
        for q in range(nodes_per_pkg):
            ccds = pkg.ccds[q * ccds_per_node : (q + 1) * ccds_per_node]
            channels = tuple(
                range(q * channels_per_node, (q + 1) * channels_per_node)
            )
            nodes.append(
                NumaNode(
                    node_id=node_id,
                    package_index=pkg.index,
                    ccds=ccds,
                    memory_channels=channels,
                )
            )
            node_id += 1
    return nodes


def node_of_core(nodes: list[NumaNode], core_global_index: int) -> NumaNode:
    """Find the NUMA node containing a core."""
    for node in nodes:
        for ccd in node.ccds:
            for core in ccd.cores():
                if core.global_index == core_global_index:
                    return node
    raise ConfigurationError(f"core {core_global_index} not in any NUMA node")
