"""Schema id, writer, and validator for ``repro.service/job`` v2.

Version 2 adds the observability fields: ``trace_id`` (the request's
correlation id, null for untraced jobs) and ``diagnostics_ready``
(whether a crash flight-recorder bundle is attached, i.e. whether
``GET /v1/jobs/<id>/diagnostics`` will answer 200).

Every job resource the service returns (submit response, status poll)
is tagged ``"schema": "repro.service/job"`` so clients and tooling can
reject foreign or stale documents, mirroring the other interchange
formats in the tree (``repro.bench/result``, ``repro.obs/metrics``,
...).  The schema registry (``lint-contracts.schemas.json``) pins the
field set: adding or removing a field without bumping
:data:`JOB_SCHEMA_VERSION` fails ``lint --contracts``.

:func:`job_document` is the single writer site;
:func:`validate_job_document` the single validator.  The suite *result*
attached to a finished job is not re-tagged here — it is exactly the
:func:`repro.core.suite.suite_to_dict` document, byte-identical to a
direct ``run_suite`` of the same configuration.
"""

from __future__ import annotations

from typing import Any

from repro.cache import config_fingerprint

JOB_SCHEMA_ID = "repro.service/job"
JOB_SCHEMA_VERSION = 2

#: Lifecycle: ``queued`` -> ``running`` -> ``done`` | ``failed``.
JOB_STATES = ("queued", "running", "done", "failed")

#: How a job was coalesced: ``none`` (fresh work), ``inflight`` (at
#: least one later identical submission joined it mid-flight), ``cache``
#: (every entry was already in the shared result cache at admission).
DEDUP_SOURCES = ("none", "inflight", "cache")


def job_document(job: Any) -> dict[str, Any]:
    """The public JSON resource for one job (this schema's one writer).

    ``job`` is a :class:`repro.service.jobs.Job`; taken duck-typed so
    this module stays import-light for clients that only validate.
    """
    return {
        "schema": JOB_SCHEMA_ID,
        "schema_version": JOB_SCHEMA_VERSION,
        "id": str(job.id),
        "tenant": str(job.spec.tenant),
        "state": str(job.state),
        "entries": [str(name) for name in job.spec.entries],
        "config": config_fingerprint(job.spec.config),
        "key": str(job.key),
        "dedup": str(job.dedup),
        "clients": int(job.clients),
        "error": None if job.error is None else str(job.error),
        "result_ready": job.result is not None,
        "trace_id": None if job.trace_id is None else str(job.trace_id),
        "diagnostics_ready": job.diagnostics is not None,
    }


def validate_job_document(doc: object) -> list[str]:
    """Validate a ``repro.service/job`` v1 document.

    Returns human-readable problems (empty = conforming), like the other
    validators in the tree.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be a JSON object, got {type(doc).__name__}"]
    if doc.get("schema") != JOB_SCHEMA_ID:
        errors.append(
            f"schema must be {JOB_SCHEMA_ID!r}, got {doc.get('schema')!r}"
        )
    if doc.get("schema_version") != JOB_SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {JOB_SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}"
        )
    for key in ("id", "tenant", "key", "dedup", "state"):
        value = doc.get(key)
        if not isinstance(value, str) or not value:
            errors.append(f"{key} must be a non-empty string")
    state = doc.get("state")
    if isinstance(state, str) and state not in JOB_STATES:
        errors.append(f"state must be one of {JOB_STATES}, got {state!r}")
    dedup = doc.get("dedup")
    if isinstance(dedup, str) and dedup not in DEDUP_SOURCES:
        errors.append(f"dedup must be one of {DEDUP_SOURCES}, got {dedup!r}")
    entries = doc.get("entries")
    if (
        not isinstance(entries, list)
        or not entries
        or not all(isinstance(e, str) and e for e in entries)
    ):
        errors.append("entries must be a non-empty list of experiment names")
    elif len(set(entries)) != len(entries):
        errors.append("entries must not repeat an experiment name")
    if not isinstance(doc.get("config"), dict):
        errors.append("config must be an object (the configuration fingerprint)")
    clients = doc.get("clients")
    if not isinstance(clients, int) or isinstance(clients, bool) or clients < 1:
        errors.append("clients must be an integer >= 1")
    error = doc.get("error")
    if error is not None and not isinstance(error, str):
        errors.append("error must be null or a string")
    if state == "failed" and error is None:
        errors.append("a failed job must carry an error message")
    result_ready = doc.get("result_ready")
    if not isinstance(result_ready, bool):
        errors.append("result_ready must be a boolean")
    elif result_ready and state != "done":
        errors.append(f"result_ready requires state 'done', got {state!r}")
    trace_id = doc.get("trace_id")
    if trace_id is not None and (
        not isinstance(trace_id, str) or not trace_id
    ):
        errors.append("trace_id must be null or a non-empty string")
    if not isinstance(doc.get("diagnostics_ready"), bool):
        errors.append("diagnostics_ready must be a boolean")
    return errors
