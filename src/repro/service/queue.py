"""Bounded async job queue: admission control, single-flight dedup, workers.

Admission happens synchronously inside :meth:`JobQueue.submit` so a
client always gets an immediate verdict:

* an identical in-flight job (same :func:`~repro.service.jobs.job_key`)
  absorbs the submission — the caller polls the *leader's* job id and
  the run happens once (single-flight);
* a tenant at its in-flight quota is rejected
  (:class:`QuotaExceeded`, HTTP 429 + ``Retry-After``);
* a full queue rejects everyone (:class:`QueueFull`, HTTP 429);
* a draining service rejects all new work (:class:`ServiceDraining`,
  HTTP 503).

``workers`` asyncio worker coroutines pull admitted jobs and execute the
blocking runner (``run_suite`` on :mod:`repro.parallel`'s process pool)
in a thread via :func:`asyncio.to_thread`, so the event loop keeps
serving polls and metrics while experiments run.  All ``service.*``
metrics live in the shared :class:`~repro.obs.MetricsRegistry` and are
exposed by the server's ``/metrics`` endpoint.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable

from repro.cache import config_fingerprint
from repro.errors import ServiceError
from repro.obs import MetricsRegistry, Obs, mint_trace_id
from repro.obs.flightrec import dump_bundle, flightrec_document, recorder
from repro.service.jobs import Job, JobSpec, entry_keys, job_key


class QuotaExceeded(ServiceError):
    """Tenant has too many in-flight jobs; retry after backoff."""

    http_status = 429

    def __init__(self, tenant: str, quota: int, retry_after_s: float) -> None:
        super().__init__(
            f"tenant {tenant!r} is at its quota of {quota} in-flight job(s); "
            f"retry in {retry_after_s:g} s"
        )
        self.retry_after_s = retry_after_s


class QueueFull(ServiceError):
    """The service-wide in-flight budget is exhausted; retry later."""

    http_status = 429

    def __init__(self, limit: int, retry_after_s: float) -> None:
        super().__init__(
            f"job queue is at its budget of {limit} in-flight job(s); "
            f"retry in {retry_after_s:g} s"
        )
        self.retry_after_s = retry_after_s


class ServiceDraining(ServiceError):
    """The service received SIGTERM: running jobs finish, new work is
    rejected; clients should fail over."""

    http_status = 503

    def __init__(self) -> None:
        super().__init__("service is draining; submit to another instance")
        self.retry_after_s = None


@dataclass(frozen=True)
class ServiceLimits:
    """Admission-control knobs (see docs/service.md)."""

    #: Total in-flight (queued + running) jobs across all tenants.
    queue_limit: int = 32
    #: In-flight jobs one tenant may own (joins of an existing job are
    #: free: they add no work).
    tenant_quota: int = 8
    #: Concurrent jobs (each job fans its entries across the pool).
    workers: int = 2
    #: ``Retry-After`` hint on 429 responses.
    retry_after_s: float = 1.0

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ServiceError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.tenant_quota < 1:
            raise ServiceError(
                f"tenant_quota must be >= 1, got {self.tenant_quota}"
            )
        if self.workers < 1:
            raise ServiceError(f"workers must be >= 1, got {self.workers}")
        if self.retry_after_s <= 0:
            raise ServiceError(
                f"retry_after_s must be positive, got {self.retry_after_s}"
            )


class JobQueue:
    """Admission control plus worker pool over a blocking job runner."""

    def __init__(
        self,
        runner: Callable[[Job], dict[str, Any]],
        *,
        metrics: MetricsRegistry,
        limits: ServiceLimits | None = None,
        cache: Any = None,
        obs: Any = None,
    ) -> None:
        """``runner`` receives the whole :class:`Job` (not just its
        spec) so it can execute under the job's per-request obs bundle
        and attach the merged trace before the job turns terminal.

        ``obs`` is the *service* :class:`repro.obs.Obs`: traced jobs
        mint their own tracer on its epoch and log through their own
        correlated logger; queue-level events log through ``obs.log``.
        Omitting it (unit tests) disables tracing and logging but not
        metrics — those flow through ``metrics`` regardless.
        """
        self._runner = runner
        self.limits = limits or ServiceLimits()
        self._cache = cache
        self._obs = obs
        self._queue: asyncio.Queue[Job] = asyncio.Queue()
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, str] = {}  # job_key -> leader job id
        self._tenant_load: dict[str, int] = {}
        self._active = 0  # queued + running
        self._seq = 0
        self._draining = False
        self._worker_tasks: list[asyncio.Task] = []

        help_sub = "Job submissions by admission outcome"
        self._m_sub = {
            outcome: metrics.counter(
                "service.submissions", help_sub, "submissions", result=outcome
            )
            for outcome in (
                "admitted",
                "deduped",
                "rejected_quota",
                "rejected_queue",
                "rejected_draining",
            )
        }
        help_dedup = "Submissions that cost no new pool run, by source"
        self._m_dedup = {
            source: metrics.counter(
                "service.dedup", help_dedup, "submissions", source=source
            )
            for source in ("inflight", "cache")
        }
        self._m_executions = metrics.counter(
            "service.executions",
            "Jobs that fanned fresh work to the pool (in-flight joins and "
            "pure cache replays excluded)",
            "jobs",
        )
        help_jobs = "Jobs by terminal state"
        self._m_jobs = {
            state: metrics.counter("service.jobs", help_jobs, "jobs", result=state)
            for state in ("done", "failed")
        }
        self._m_depth = metrics.gauge(
            "service.queue_depth", "Queued plus running jobs", "jobs"
        )
        self._m_latency = metrics.histogram(
            "service.job_latency_s", "Admission-to-finish wall latency", "s"
        )
        self._metrics = metrics
        self._tenant_help = "Per-tenant admission decisions"

    # --- admission ---------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def depth(self) -> int:
        """Queued plus running jobs."""
        return self._active

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def state_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for job in self._jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return dict(sorted(counts.items()))

    def job_ids(self) -> list[str]:
        return sorted(self._jobs)

    def _tenant_counter(self, tenant: str, result: str):
        return self._metrics.counter(
            "service.tenant",
            self._tenant_help,
            "submissions",
            tenant=tenant,
            result=result,
        )

    def _log(self, job: Job | None, level: str, event: str, **fields) -> None:
        """Structured log via the job's correlated logger when it has
        one, else the service logger; silent without an obs bundle."""
        log = None
        if job is not None and job.obs is not None:
            log = job.obs.log
        elif self._obs is not None:
            log = self._obs.log
        if log is not None:
            log.log(level, event, **fields)

    async def submit(self, spec: JobSpec) -> tuple[Job, bool]:
        """Admit one submission; ``(job, joined_existing)``.

        Raises :class:`ServiceDraining`, :class:`QuotaExceeded`, or
        :class:`QueueFull`; the caller maps those to HTTP statuses.
        """
        if self._draining:
            self._m_sub["rejected_draining"].inc()
            self._tenant_counter(spec.tenant, "reject").inc()
            self._log(
                None, "warning", "job.rejected",
                tenant=spec.tenant, reason="draining",
            )
            raise ServiceDraining()
        key = job_key(spec)
        leader_id = self._inflight.get(key)
        if leader_id is not None:
            job = self._jobs[leader_id]
            job.clients += 1
            if job.dedup == "none":
                job.dedup = "inflight"
            self._m_sub["deduped"].inc()
            self._m_dedup["inflight"].inc()
            self._tenant_counter(spec.tenant, "admit").inc()
            self._log(
                job, "info", "job.deduped",
                job_id=job.id, tenant=spec.tenant, clients=job.clients,
            )
            return job, True
        load = self._tenant_load.get(spec.tenant, 0)
        if load >= self.limits.tenant_quota:
            self._m_sub["rejected_quota"].inc()
            self._tenant_counter(spec.tenant, "reject").inc()
            self._log(
                None, "warning", "job.rejected",
                tenant=spec.tenant, reason="quota",
            )
            raise QuotaExceeded(
                spec.tenant, self.limits.tenant_quota, self.limits.retry_after_s
            )
        if self._active >= self.limits.queue_limit:
            self._m_sub["rejected_queue"].inc()
            self._tenant_counter(spec.tenant, "reject").inc()
            self._log(
                None, "warning", "job.rejected",
                tenant=spec.tenant, reason="queue",
            )
            raise QueueFull(self.limits.queue_limit, self.limits.retry_after_s)

        self._seq += 1
        job = Job(id=f"job-{self._seq:06d}", spec=spec, key=key)
        if spec.trace and self._obs is not None:
            # Mint the per-job obs bundle at the accept boundary: its
            # tracer shares the service epoch (so the server-recorded
            # http.accept span and everything after it sit on one time
            # axis) and the shared metrics registry; the trace id is
            # content-derived from the job identity.
            job.trace_id = mint_trace_id(job.id, job.key)
            job.obs = Obs(
                trace_id=job.trace_id,
                metrics=self._metrics,
                epoch_ns=self._obs.tracer.epoch_ns,
            )
            job.t_accept_ns = job.obs.tracer.now_ns()
        if self._cache is not None and all(
            self._cache.contains(k) for k in entry_keys(spec).values()
        ):
            # Every entry is already cached: the run will be a pure
            # cache replay.  Classified at admission so the counter is
            # deterministic (no race with concurrent evictions).
            job.dedup = "cache"
            self._m_dedup["cache"].inc()
        job.t_submit = asyncio.get_running_loop().time()
        self._jobs[job.id] = job
        self._inflight[key] = job.id
        self._tenant_load[spec.tenant] = load + 1
        self._active += 1
        self._m_depth.set(self._active)
        self._m_sub["admitted"].inc()
        self._tenant_counter(spec.tenant, "admit").inc()
        self._log(
            job, "info", "job.admitted",
            job_id=job.id, tenant=spec.tenant, dedup=job.dedup,
            depth=self._active,
        )
        await self._queue.put(job)
        return job, False

    # --- execution ---------------------------------------------------------

    async def start(self) -> None:
        """Spawn the worker coroutines (idempotent)."""
        if self._worker_tasks:
            return
        self._worker_tasks = [
            asyncio.create_task(self._worker_loop(), name=f"service-worker-{i}")
            for i in range(self.limits.workers)
        ]

    async def _worker_loop(self) -> None:
        while True:
            job = await self._queue.get()
            try:
                await self._run_job(job)
            finally:
                self._queue.task_done()

    async def _run_job(self, job: Job) -> None:
        job.state = "running"
        if job.obs is not None:
            # Queue wait: admission -> worker pickup.  Recorded with an
            # explicit start so it touches http.accept exactly at
            # t_accept — sequential host-lane siblings, strict nesting.
            job.obs.tracer.complete(
                "queue.wait",
                cat="service",
                t0_wall_ns=job.t_accept_ns,
                job_id=job.id,
            )
        self._log(job, "info", "job.started", job_id=job.id, dedup=job.dedup)
        if job.dedup != "cache":
            # A "cache" job replays every entry from the shared store —
            # run_suite never touches the pool for it.
            self._m_executions.inc()
        try:
            result = await asyncio.to_thread(self._runner, job)
        except Exception as err:  # noqa: BLE001 - runner failures become job state
            message = f"{type(err).__name__}: {err}"
            # Diagnostics attach before the state flips, so a client
            # that sees "failed" can always fetch the bundle.
            job.diagnostics = self._capture_diagnostics(job, message)
            job.finish("failed", error=message)
            self._m_jobs["failed"].inc()
            self._log(job, "error", "job.failed", job_id=job.id, error=message)
        else:
            job.finish("done", result=result)
            self._m_jobs["done"].inc()
            self._log(job, "info", "job.finished", job_id=job.id, state="done")
        finally:
            self._active -= 1
            self._m_depth.set(self._active)
            tenant = job.spec.tenant
            load = self._tenant_load.get(tenant, 1) - 1
            if load <= 0:
                self._tenant_load.pop(tenant, None)
            else:
                self._tenant_load[tenant] = load
            if self._inflight.get(job.key) == job.id:
                del self._inflight[job.key]
            loop = asyncio.get_running_loop()
            self._m_latency.observe(loop.time() - job.t_submit)

    def _capture_diagnostics(self, job: Job, message: str) -> dict[str, Any]:
        """Freeze the flight-recorder ring into the job's crash bundle.

        The bundle carries the recent event tail, a metrics snapshot,
        the job's config fingerprint, and its entry cache-key digests;
        it is also written to ``$REPRO_FLIGHTREC_DIR`` when configured.
        """
        rec = recorder()
        rec.note("service.job.failed", job_id=job.id, error=message)
        doc = flightrec_document(
            rec,
            f"job-failure:{job.id}",
            metrics=self._metrics.snapshot(),
            config=config_fingerprint(job.spec.config),
            cache_keys=list(entry_keys(job.spec).values()),
            trace_id=job.trace_id,
        )
        dump_bundle(doc)
        return doc

    async def drain(self) -> None:
        """Reject new work, finish everything admitted, stop the workers."""
        self._draining = True
        await self._queue.join()
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks = []
