"""``python -m repro.service`` / ``repro-zen2 serve`` — run the daemon.

``serve`` (the default) starts the HTTP experiment service and blocks
until SIGTERM/SIGINT, then drains gracefully and exits 0.  ``smoke``
runs the self-contained end-to-end demo from :mod:`repro.service.smoke`
(spawns a daemon subprocess, hammers it with concurrent clients, checks
dedup counters and byte-identical results, SIGTERMs it) — the CI job.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.cache import ResultCache
from repro.service.queue import ServiceLimits
from repro.service.server import ExperimentService


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="HTTP experiment service for the Zen 2 reproduction "
        "suite (see docs/service.md).",
    )
    parser.add_argument(
        "command",
        nargs="?",
        choices=["serve", "smoke"],
        default="serve",
        help="serve (default): run the daemon; smoke: end-to-end self-test",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument(
        "--pool-jobs",
        type=int,
        default=2,
        help="worker processes per suite run (run_suite parallel=N)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="concurrent jobs the queue executes",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=32,
        help="total in-flight (queued+running) job budget",
    )
    parser.add_argument(
        "--tenant-quota",
        type=int,
        default=8,
        help="in-flight jobs one tenant may own",
    )
    parser.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        help="per-entry execution timeout inside the pool",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="run without the shared result cache (every job recomputes)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-zen2)",
    )
    parser.add_argument(
        "--flightrec-dir",
        default=None,
        help="directory for crash flight-recorder bundles (sets "
        "$REPRO_FLIGHTREC_DIR for this process and its pool workers)",
    )
    parser.add_argument(
        "--log-jsonl",
        default=None,
        help="append structured JSON-line logs to PATH ('-' for stderr)",
    )
    args = parser.parse_args(argv)

    if args.command == "smoke":
        from repro.service.smoke import run_smoke

        return run_smoke()

    if args.flightrec_dir is not None:
        import os

        from repro.obs.flightrec import ENV_DIR

        os.environ[ENV_DIR] = args.flightrec_dir

    from repro.obs import Obs

    obs = Obs(
        log_stream=sys.stderr if args.log_jsonl == "-" else None,
        log_path=None if args.log_jsonl in (None, "-") else args.log_jsonl,
    )
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    service = ExperimentService(
        cache=cache,
        limits=ServiceLimits(
            queue_limit=args.queue_limit,
            tenant_quota=args.tenant_quota,
            workers=args.workers,
        ),
        pool_jobs=args.pool_jobs,
        timeout_s=args.timeout_s,
        obs=obs,
    )
    asyncio.run(service.serve(args.host, args.port))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
