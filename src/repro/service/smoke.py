"""End-to-end service smoke: the acceptance demo, runnable in CI.

Spawns the daemon as a real subprocess, then from 8 concurrent client
threads submits 4 *unique* suite configurations (each submitted twice).
Asserts the whole contract in one pass:

* exactly 4 pool executions — the single-flight/dedup counters on
  ``/metrics`` prove the other 4 submissions were absorbed;
* every returned result document is byte-identical to a direct
  in-process ``run_suite`` + ``dump_json`` of the same configuration;
* ``/metrics`` exposes the ``service.*`` series and ``/metrics.json``
  validates as a ``repro.obs/metrics`` v1 document;
* one traced request (``"trace": true``, a fresh seed) yields a merged
  cross-process timeline on ``/v1/jobs/<id>/trace`` — HTTP accept,
  queue wait, pool gang and worker-side experiment spans under one
  trace id — while its result stays byte-identical to an untraced
  direct run (tracing observes, never perturbs);
* a forced worker crash leaves a ``repro.obs/flightrec`` bundle that
  the shipped ``repro-zen2 obs validate`` / ``obs report`` CLI accepts
  (both artifacts land in ``$REPRO_SMOKE_ARTIFACT_DIR`` when set, so
  CI can upload them);
* SIGTERM drains gracefully: the process exits 0 on its own.

Run it via ``make service-smoke`` or ``python -m repro.service smoke``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import urllib.error
import urllib.request

from repro.core.experiment import ExperimentConfig
from repro.core.suite import run_suite, suite_to_dict
from repro.obs import validate_metrics_document, validate_trace_document

#: Two fast registry entries keep the smoke under a CI minute.
ENTRIES = ["sec5a_idle_sibling", "sec7_rapl_update_rate"]
SCALE = 0.02
SEEDS = [0, 1, 2, 3]  # 4 unique configs
CLIENTS = 8  # each config submitted twice
TRACE_SEED = 4  # the traced request uses its own config (5th execution)


def _request(port: int, path: str, body: dict | None = None) -> tuple[int, bytes]:
    url = f"http://127.0.0.1:{port}{path}"
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=120) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.read()


def _client(port: int, seed: int, out: dict[int, bytes], lock: threading.Lock):
    body = {
        "tenant": f"smoke-{seed % 2}",
        "entries": ENTRIES,
        "config": {"seed": seed, "scale": SCALE},
    }
    status, payload = _request(port, "/v1/jobs", body)
    assert status in (200, 202), (status, payload)
    job_id = json.loads(payload)["id"]
    while True:
        status, payload = _request(port, f"/v1/jobs/{job_id}?wait_s=30")
        assert status == 200, (status, payload)
        doc = json.loads(payload)
        if doc["state"] in ("done", "failed"):
            break
    assert doc["state"] == "done", doc
    status, payload = _request(port, f"/v1/jobs/{job_id}/result")
    assert status == 200, (status, payload)
    with lock:
        out[seed] = payload


def _smoke_boom() -> None:
    """Module-level (picklable) deliberate worker crash."""
    raise RuntimeError("smoke: deliberate crash")  # EXC001: injected fault, deliberately outside ReproError


def _parse_prometheus(text: str) -> dict[str, float]:
    series = {}
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        name, _, value = line.rpartition(" ")
        series[name] = float(value)
    return series


def run_smoke() -> int:
    workdir = tempfile.mkdtemp(prefix="repro-service-smoke-")
    env = dict(os.environ, REPRO_CACHE_DIR=os.path.join(workdir, "cache"))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    try:
        assert proc.stdout is not None
        banner = proc.stdout.readline()
        assert "listening on" in banner, banner
        port = int(banner.rsplit(":", 1)[1])
        print(f"smoke: daemon up on port {port}")

        results: dict[int, bytes] = {}
        lock = threading.Lock()
        threads = [
            threading.Thread(target=_client, args=(port, seed, results, lock))
            for seed in SEEDS
            for _ in range(CLIENTS // len(SEEDS))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not any(t.is_alive() for t in threads), "client thread hung"
        assert sorted(results) == SEEDS, sorted(results)
        print(f"smoke: {CLIENTS} clients done, {len(results)} unique configs")

        # Exactly one pool execution per unique config: the dedup proof.
        status, payload = _request(port, "/metrics")
        assert status == 200
        series = _parse_prometheus(payload.decode())
        executions = series.get("repro_service_executions", 0.0)
        assert executions == len(SEEDS), (
            f"expected exactly {len(SEEDS)} executions, metrics say "
            f"{executions}"
        )
        assert any(n.startswith("repro_service_") for n in series), series
        deduped = sum(
            v for n, v in series.items() if n.startswith("repro_service_dedup")
        )
        assert deduped >= CLIENTS - len(SEEDS), series
        print(f"smoke: executions={executions:g} dedup-absorbed={deduped:g}")

        status, payload = _request(port, "/metrics.json")
        assert status == 200
        problems = validate_metrics_document(json.loads(payload))
        assert problems == [], problems

        # Byte-identical to a direct in-process run of the same config.
        for seed in SEEDS:
            direct = suite_to_dict(
                run_suite(
                    ExperimentConfig(seed=seed, scale=SCALE), only=ENTRIES
                )
            )
            expected = (
                json.dumps(direct, indent=2, sort_keys=True) + "\n"
            ).encode()
            assert results[seed] == expected, (
                f"seed {seed}: service document differs from direct run"
            )
        print("smoke: all 4 result documents byte-identical to direct runs")

        artifact_dir = os.environ.get("REPRO_SMOKE_ARTIFACT_DIR") or (
            os.path.join(workdir, "artifacts")
        )
        os.makedirs(artifact_dir, exist_ok=True)

        # One traced request end to end: same entries, a fresh seed, so
        # the executions==4 dedup proof above stays untouched.
        body = {
            "tenant": "smoke-trace",
            "entries": ENTRIES,
            "config": {"seed": TRACE_SEED, "scale": SCALE},
            "trace": True,
        }
        status, payload = _request(port, "/v1/jobs", body)
        assert status in (200, 202), (status, payload)
        job_id = json.loads(payload)["id"]
        while True:
            status, payload = _request(port, f"/v1/jobs/{job_id}?wait_s=30")
            assert status == 200, (status, payload)
            job_doc = json.loads(payload)
            if job_doc["state"] in ("done", "failed"):
                break
        assert job_doc["state"] == "done", job_doc
        assert job_doc["trace_id"], job_doc
        assert job_doc["diagnostics_ready"] is False, job_doc

        # Tracing observes, never perturbs: the traced result is still
        # byte-identical to an *untraced* direct run.
        status, payload = _request(port, f"/v1/jobs/{job_id}/result")
        assert status == 200, (status, payload)
        direct = suite_to_dict(
            run_suite(
                ExperimentConfig(seed=TRACE_SEED, scale=SCALE), only=ENTRIES
            )
        )
        expected = (
            json.dumps(direct, indent=2, sort_keys=True) + "\n"
        ).encode()
        assert payload == expected, (
            "traced result differs from untraced direct run"
        )

        status, payload = _request(port, f"/v1/jobs/{job_id}/trace")
        assert status == 200, (status, payload)
        trace = json.loads(payload)
        problems = validate_trace_document(trace)
        assert problems == [], problems
        assert trace["otherData"]["trace_id"] == job_doc["trace_id"], (
            trace["otherData"]
        )
        spans = {
            e["name"] for e in trace["traceEvents"] if e.get("ph") == "X"
        }
        assert {"http.accept", "queue.wait", "pool.gang", "suite"} <= spans, (
            sorted(spans)
        )
        cats = {
            e.get("cat") for e in trace["traceEvents"] if e.get("ph") == "X"
        }
        assert "experiment" in cats, sorted(c for c in cats if c)
        trace_path = os.path.join(artifact_dir, "smoke-trace.json")
        with open(trace_path, "w") as fh:
            fh.write(json.dumps(trace, indent=2, sort_keys=True) + "\n")
        print(
            f"smoke: traced request merged "
            f"{trace['otherData']['merged']} process timelines under "
            f"trace_id {job_doc['trace_id']}"
        )

        # A healthy job has no diagnostics to serve.
        status, _ = _request(port, f"/v1/jobs/{job_id}/diagnostics")
        assert status == 404, status

        # Forced worker crash -> flight-recorder bundle on disk.
        from repro.obs.flightrec import ENV_DIR
        from repro.parallel import Task, run_tasks

        os.environ[ENV_DIR] = artifact_dir
        try:
            outcomes = run_tasks(
                [Task("boom", _smoke_boom, ())], jobs=1, retries=0
            )
        finally:
            del os.environ[ENV_DIR]
        assert not outcomes[0].ok, outcomes
        bundles = sorted(
            name
            for name in os.listdir(artifact_dir)
            if name.startswith("flightrec-") and name.endswith(".json")
        )
        assert bundles, "crash left no flight-recorder bundle"
        bundle_path = os.path.join(artifact_dir, bundles[0])

        # The shipped inspector CLI accepts both artifacts.
        for argv in (
            ["validate", trace_path, bundle_path],
            ["report", artifact_dir],
        ):
            inspect = subprocess.run(
                [sys.executable, "-m", "repro.obs", *argv],
                capture_output=True,
                text=True,
            )
            assert inspect.returncode == 0, (
                argv,
                inspect.stdout,
                inspect.stderr,
            )
        print(
            f"smoke: crash bundle {bundles[0]} validates via "
            "obs validate/report"
        )

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, (proc.returncode, out)
        assert "drained" in out, out
        print("smoke: SIGTERM drained cleanly, exit 0")
        print("service smoke OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(run_smoke())
