"""End-to-end service smoke: the acceptance demo, runnable in CI.

Spawns the daemon as a real subprocess, then from 8 concurrent client
threads submits 4 *unique* suite configurations (each submitted twice).
Asserts the whole contract in one pass:

* exactly 4 pool executions — the single-flight/dedup counters on
  ``/metrics`` prove the other 4 submissions were absorbed;
* every returned result document is byte-identical to a direct
  in-process ``run_suite`` + ``dump_json`` of the same configuration;
* ``/metrics`` exposes the ``service.*`` series and ``/metrics.json``
  validates as a ``repro.obs/metrics`` v1 document;
* SIGTERM drains gracefully: the process exits 0 on its own.

Run it via ``make service-smoke`` or ``python -m repro.service smoke``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import urllib.error
import urllib.request

from repro.core.experiment import ExperimentConfig
from repro.core.suite import run_suite, suite_to_dict
from repro.obs import validate_metrics_document

#: Two fast registry entries keep the smoke under a CI minute.
ENTRIES = ["sec5a_idle_sibling", "sec7_rapl_update_rate"]
SCALE = 0.02
SEEDS = [0, 1, 2, 3]  # 4 unique configs
CLIENTS = 8  # each config submitted twice


def _request(port: int, path: str, body: dict | None = None) -> tuple[int, bytes]:
    url = f"http://127.0.0.1:{port}{path}"
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=120) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.read()


def _client(port: int, seed: int, out: dict[int, bytes], lock: threading.Lock):
    body = {
        "tenant": f"smoke-{seed % 2}",
        "entries": ENTRIES,
        "config": {"seed": seed, "scale": SCALE},
    }
    status, payload = _request(port, "/v1/jobs", body)
    assert status in (200, 202), (status, payload)
    job_id = json.loads(payload)["id"]
    while True:
        status, payload = _request(port, f"/v1/jobs/{job_id}?wait_s=30")
        assert status == 200, (status, payload)
        doc = json.loads(payload)
        if doc["state"] in ("done", "failed"):
            break
    assert doc["state"] == "done", doc
    status, payload = _request(port, f"/v1/jobs/{job_id}/result")
    assert status == 200, (status, payload)
    with lock:
        out[seed] = payload


def _parse_prometheus(text: str) -> dict[str, float]:
    series = {}
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        name, _, value = line.rpartition(" ")
        series[name] = float(value)
    return series


def run_smoke() -> int:
    workdir = tempfile.mkdtemp(prefix="repro-service-smoke-")
    env = dict(os.environ, REPRO_CACHE_DIR=os.path.join(workdir, "cache"))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    try:
        assert proc.stdout is not None
        banner = proc.stdout.readline()
        assert "listening on" in banner, banner
        port = int(banner.rsplit(":", 1)[1])
        print(f"smoke: daemon up on port {port}")

        results: dict[int, bytes] = {}
        lock = threading.Lock()
        threads = [
            threading.Thread(target=_client, args=(port, seed, results, lock))
            for seed in SEEDS
            for _ in range(CLIENTS // len(SEEDS))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not any(t.is_alive() for t in threads), "client thread hung"
        assert sorted(results) == SEEDS, sorted(results)
        print(f"smoke: {CLIENTS} clients done, {len(results)} unique configs")

        # Exactly one pool execution per unique config: the dedup proof.
        status, payload = _request(port, "/metrics")
        assert status == 200
        series = _parse_prometheus(payload.decode())
        executions = series.get("repro_service_executions", 0.0)
        assert executions == len(SEEDS), (
            f"expected exactly {len(SEEDS)} executions, metrics say "
            f"{executions}"
        )
        assert any(n.startswith("repro_service_") for n in series), series
        deduped = sum(
            v for n, v in series.items() if n.startswith("repro_service_dedup")
        )
        assert deduped >= CLIENTS - len(SEEDS), series
        print(f"smoke: executions={executions:g} dedup-absorbed={deduped:g}")

        status, payload = _request(port, "/metrics.json")
        assert status == 200
        problems = validate_metrics_document(json.loads(payload))
        assert problems == [], problems

        # Byte-identical to a direct in-process run of the same config.
        for seed in SEEDS:
            direct = suite_to_dict(
                run_suite(
                    ExperimentConfig(seed=seed, scale=SCALE), only=ENTRIES
                )
            )
            expected = (
                json.dumps(direct, indent=2, sort_keys=True) + "\n"
            ).encode()
            assert results[seed] == expected, (
                f"seed {seed}: service document differs from direct run"
            )
        print("smoke: all 4 result documents byte-identical to direct runs")

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, (proc.returncode, out)
        assert "drained" in out, out
        print("smoke: SIGTERM drained cleanly, exit 0")
        print("service smoke OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(run_smoke())
