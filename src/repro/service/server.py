"""The asyncio experiment service: HTTP/1.1 front end over the job queue.

The protocol surface is deliberately tiny and dependency-free — a
line-oriented HTTP/1.1 parser over :func:`asyncio.start_server`, every
response ``Connection: close``:

==========================================  =================================
``POST /v1/jobs``                           submit a job, ``202`` +
                                            ``repro.service/job`` document
                                            (``429`` + ``Retry-After`` on
                                            quota/queue budget, ``503``
                                            while draining, ``400`` on a
                                            malformed spec)
``GET /v1/jobs``                            list known job ids
``GET /v1/jobs/<id>[?wait_s=N]``            job status; ``wait_s`` long-polls
                                            until the job is terminal
``GET /v1/jobs/<id>/result``                the finished suite document,
                                            byte-identical to a direct
                                            ``run_suite`` + ``dump_json``
                                            of the same configuration
``GET /v1/jobs/<id>/trace``                 merged ``repro.obs/trace``
                                            timeline of a ``"trace": true``
                                            job: HTTP accept, queue wait,
                                            pool phases, worker-side
                                            experiment spans, one trace id
``GET /v1/jobs/<id>/diagnostics``           ``repro.obs/flightrec`` crash
                                            bundle of a failed job
``GET /healthz``                            liveness + drain state + depth
``GET /metrics``                            Prometheus text exposition
``GET /metrics.json``                       ``repro.obs/metrics`` v1 snapshot
==========================================  =================================

Every request lands in the ``service.http_requests`` counter and the
``service.http_latency_s`` histogram, labelled by route template and
status code.

``SIGTERM``/``SIGINT`` trigger a graceful drain: new submissions get
503, admitted jobs run to completion, status/result/metrics stay
served until the queue is empty, then the listener closes and
:func:`serve` returns (exit code 0).
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.cache import ResultCache
from repro.core.suite import run_suite, suite_to_dict, suite_trace_document
from repro.errors import ReproError, ServiceError
from repro.obs import Obs
from repro.service.jobs import Job, JobSpec
from repro.service.queue import (
    JobQueue,
    QueueFull,
    QuotaExceeded,
    ServiceDraining,
    ServiceLimits,
)
from repro.service.schema import job_document

#: Cap on one long-poll; clients re-poll, the connection never idles longer.
MAX_WAIT_S = 60.0
#: Request bodies above this are rejected outright (413).
MAX_BODY_BYTES = 1 << 20


class ExperimentService:
    """One service instance: queue, HTTP listener, metrics, drain logic."""

    def __init__(
        self,
        *,
        cache: ResultCache | None = None,
        limits: ServiceLimits | None = None,
        pool_jobs: int = 2,
        timeout_s: float | None = None,
        retries: int = 1,
        obs: Obs | None = None,
    ) -> None:
        self.obs = obs or Obs()
        self.cache = cache
        self.pool_jobs = pool_jobs
        self.timeout_s = timeout_s
        self.retries = retries
        self.queue = JobQueue(
            self._execute,
            metrics=self.obs.metrics,
            limits=limits,
            cache=cache,
            obs=self.obs,
        )
        self._server: asyncio.Server | None = None
        self._drain_requested = asyncio.Event()
        self._m_http_help = "HTTP requests by route template and status"
        self._m_http_latency_help = (
            "HTTP request wall latency by route template and status"
        )

    # --- execution ---------------------------------------------------------

    def _execute(self, job: Job) -> dict[str, Any]:
        """Run one job (worker thread).  The returned document is exactly
        what a direct ``run_suite`` + ``suite_to_dict`` of the same
        configuration produces — execution mode never leaks into it.

        A traced job runs under its own per-request obs bundle; the
        merged end-to-end timeline (HTTP accept through worker-side
        dispatch) attaches to ``job.trace`` here, in the runner thread,
        before the queue flips the job terminal — so a client that sees
        ``done`` can always fetch the trace."""
        spec = job.spec
        result = run_suite(
            spec.config,
            only=list(spec.entries),
            parallel=self.pool_jobs,
            cache=self.cache,
            timeout_s=self.timeout_s,
            retries=self.retries,
            obs=job.obs if job.obs is not None else self.obs,
        )
        if job.obs is not None:
            job.trace = suite_trace_document(result, job_id=job.id)
        return suite_to_dict(result)

    # --- lifecycle ---------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Start workers and the listener; returns the bound port."""
        await self.queue.start()
        self._server = await asyncio.start_server(self._handle, host, port)
        return self._server.sockets[0].getsockname()[1]

    def request_drain(self) -> None:
        """Begin a graceful shutdown (idempotent, signal-handler safe)."""
        self._drain_requested.set()

    async def wait_drained(self) -> None:
        """Block until drain is requested, then run it to completion."""
        await self._drain_requested.wait()
        await self.queue.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def serve(self, host: str = "127.0.0.1", port: int = 8787) -> None:
        """Run until SIGTERM/SIGINT, then drain and return."""
        bound = await self.start(host, port)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_drain)
            except NotImplementedError:  # pragma: no cover - non-Unix loops
                pass
        print(f"repro service listening on http://{host}:{bound}", flush=True)
        await self.wait_drained()
        print("repro service drained, exiting", flush=True)

    # --- HTTP plumbing -----------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        route = "unparsed"
        t0_ns = self.obs.tracer.now_ns()
        try:
            method, target, body = await self._read_request(reader)
            route, status, payload, headers = await self._dispatch(
                method, target, body, t0_ns
            )
        except _HttpError as err:
            status, payload, headers = err.status, err.payload(), err.headers
        except (ConnectionError, asyncio.IncompleteReadError):
            writer.close()
            return
        elapsed_s = (self.obs.tracer.now_ns() - t0_ns) / 1e9
        self.obs.metrics.counter(
            "service.http_requests",
            self._m_http_help,
            "requests",
            route=route,
            status=str(status),
        ).inc()
        self.obs.metrics.histogram(
            "service.http_latency_s",
            self._m_http_latency_help,
            "s",
            route=route,
            code=str(status),
        ).observe(elapsed_s)
        self.obs.log.log(
            "warning" if status >= 400 else "info",
            "http.request",
            route=route,
            status=status,
        )
        await self._respond(writer, status, payload, headers)

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target = parts[0], parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError as err:
                    raise _HttpError(400, "bad Content-Length") from err
        if content_length > MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(content_length) if content_length else b""
        return method, target, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        headers: dict[str, str],
    ) -> None:
        reason = {
            200: "OK",
            202: "Accepted",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
            409: "Conflict",
            413: "Payload Too Large",
            429: "Too Many Requests",
            503: "Service Unavailable",
        }.get(status, "OK")
        head = [f"HTTP/1.1 {status} {reason}"]
        out_headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(payload)),
            "Connection": "close",
        }
        out_headers.update(headers)
        head.extend(f"{k}: {v}" for k, v in out_headers.items())
        try:
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
            writer.write(payload)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except ConnectionError:  # pragma: no cover - client went away
            pass

    # --- routing -----------------------------------------------------------

    async def _dispatch(
        self, method: str, target: str, body: bytes, t0_ns: int = 0
    ) -> tuple[str, int, bytes, dict[str, str]]:
        """Returns ``(route_template, status, payload, extra_headers)``.

        ``t0_ns`` is the request arrival time on the service tracer's
        epoch — the start of a traced job's ``http.accept`` span."""
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        if path == "/v1/jobs":
            if method == "POST":
                return await self._post_job(body, t0_ns)
            if method == "GET":
                doc = {"jobs": self.queue.job_ids()}
                return "/v1/jobs", 200, _json_bytes(doc), {}
            raise _HttpError(405, f"{method} not supported on {path}")
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/") :]
            if method != "GET":
                raise _HttpError(405, f"{method} not supported on {path}")
            if rest.endswith("/result"):
                return self._get_result(rest[: -len("/result")])
            if rest.endswith("/trace"):
                return self._get_trace(rest[: -len("/trace")])
            if rest.endswith("/diagnostics"):
                return self._get_diagnostics(rest[: -len("/diagnostics")])
            return await self._get_job(rest, url.query)
        if method != "GET":
            raise _HttpError(405, f"{method} not supported on {path}")
        if path == "/healthz":
            doc = {
                "status": "draining" if self.queue.draining else "ok",
                "queue_depth": self.queue.depth,
                "jobs": self.queue.state_counts(),
            }
            return "/healthz", 200, _json_bytes(doc), {}
        if path == "/metrics":
            payload = self.obs.to_prometheus().encode()
            headers = {"Content-Type": "text/plain; version=0.0.4"}
            return "/metrics", 200, payload, headers
        if path == "/metrics.json":
            return "/metrics.json", 200, _json_bytes(self.obs.metrics_snapshot()), {}
        raise _HttpError(404, f"no route for {path}")

    async def _post_job(
        self, body: bytes, t0_ns: int = 0
    ) -> tuple[str, int, bytes, dict[str, str]]:
        try:
            doc = json.loads(body or b"{}")
        except ValueError as err:
            raise _HttpError(400, f"request body is not JSON: {err}") from err
        try:
            spec = JobSpec.from_request(doc)
            job, joined = await self.queue.submit(spec)
        except (QuotaExceeded, QueueFull) as err:
            raise _HttpError(
                429, str(err), {"Retry-After": f"{err.retry_after_s:g}"}
            ) from err
        except ServiceDraining as err:
            raise _HttpError(503, str(err)) from err
        except ReproError as err:
            raise _HttpError(400, str(err)) from err
        if not joined and job.obs is not None:
            # HTTP accept: request arrival -> admission.  Closed at
            # exactly t_accept so it touches queue.wait without overlap
            # (sequential siblings on the host lane).
            job.obs.tracer.complete(
                "http.accept",
                cat="service",
                t0_wall_ns=t0_ns,
                t1_wall_ns=job.t_accept_ns,
                job_id=job.id,
                tenant=spec.tenant,
            )
        status = 200 if joined else 202
        return "/v1/jobs", status, _json_bytes(job_document(job)), {}

    async def _get_job(
        self, job_id: str, query: str
    ) -> tuple[str, int, bytes, dict[str, str]]:
        job = self._lookup(job_id)
        wait_raw = parse_qs(query).get("wait_s", ["0"])[-1]
        try:
            wait_s = float(wait_raw)
        except ValueError as err:
            raise _HttpError(400, f"bad wait_s: {wait_raw!r}") from err
        if wait_s > 0 and not job.terminal:
            try:
                await asyncio.wait_for(
                    job.finished.wait(), min(wait_s, MAX_WAIT_S)
                )
            except asyncio.TimeoutError:
                pass  # report current (non-terminal) state
        return "/v1/jobs/{id}", 200, _json_bytes(job_document(job)), {}

    def _get_result(
        self, job_id: str
    ) -> tuple[str, int, bytes, dict[str, str]]:
        job = self._lookup(job_id)
        if job.state == "failed":
            raise _HttpError(409, f"job {job_id} failed: {job.error}")
        if job.result is None:
            raise _HttpError(409, f"job {job_id} is {job.state}; poll until done")
        # Rendered exactly like repro.core.serialize.dump_json so the
        # response bytes equal a direct run_suite document on disk.
        payload = (
            json.dumps(job.result, indent=2, sort_keys=True) + "\n"
        ).encode()
        return "/v1/jobs/{id}/result", 200, payload, {}

    def _get_trace(
        self, job_id: str
    ) -> tuple[str, int, bytes, dict[str, str]]:
        job = self._lookup(job_id)
        if job.trace_id is None:
            raise _HttpError(
                404, f"job {job_id} was not traced; submit with \"trace\": true"
            )
        if job.trace is None:
            raise _HttpError(
                409, f"job {job_id} is {job.state}; trace not ready"
            )
        return "/v1/jobs/{id}/trace", 200, _json_bytes(job.trace), {}

    def _get_diagnostics(
        self, job_id: str
    ) -> tuple[str, int, bytes, dict[str, str]]:
        job = self._lookup(job_id)
        if job.diagnostics is None:
            raise _HttpError(
                404,
                f"job {job_id} has no diagnostics bundle (only failed "
                "jobs carry one)",
            )
        return (
            "/v1/jobs/{id}/diagnostics",
            200,
            _json_bytes(job.diagnostics),
            {},
        )

    def _lookup(self, job_id: str) -> Job:
        job = self.queue.get(job_id)
        if job is None:
            raise _HttpError(404, f"no such job: {job_id}")
        return job


class _HttpError(ServiceError):
    """Internal: carries an HTTP status (and headers) up to the handler."""

    def __init__(
        self, status: int, message: str, headers: dict[str, str] | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}

    def payload(self) -> bytes:
        return _json_bytes({"error": str(self)})


def _json_bytes(doc: Any) -> bytes:
    return (json.dumps(doc, indent=2, sort_keys=True) + "\n").encode()
