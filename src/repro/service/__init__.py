"""repro.service — the HTTP experiment daemon.

A thin asyncio service over the existing execution stack: clients POST
a suite request (entries + config), the bounded job queue deduplicates
identical in-flight work (single-flight, keyed on the result cache's
own content addresses), executes leaders on :mod:`repro.parallel`'s
process pool through :func:`repro.core.suite.run_suite`, and serves the
finished :func:`~repro.core.suite.suite_to_dict` documents byte-for-byte
identical to a direct run.  Per-tenant quotas and a queue budget give
backpressure (HTTP 429 + ``Retry-After``); SIGTERM drains gracefully;
``/metrics`` exposes ``service.*`` series from the shared
:class:`~repro.obs.MetricsRegistry`.  See docs/service.md.
"""

from __future__ import annotations

from repro.service.jobs import Job, JobSpec, entry_keys, job_key
from repro.service.queue import (
    JobQueue,
    QueueFull,
    QuotaExceeded,
    ServiceDraining,
    ServiceLimits,
)
from repro.service.schema import (
    DEDUP_SOURCES,
    JOB_SCHEMA_ID,
    JOB_SCHEMA_VERSION,
    JOB_STATES,
    job_document,
    validate_job_document,
)
from repro.service.server import ExperimentService

__all__ = [
    "ExperimentService",
    "Job",
    "JobSpec",
    "JobQueue",
    "ServiceLimits",
    "QuotaExceeded",
    "QueueFull",
    "ServiceDraining",
    "job_key",
    "entry_keys",
    "job_document",
    "validate_job_document",
    "JOB_SCHEMA_ID",
    "JOB_SCHEMA_VERSION",
    "JOB_STATES",
    "DEDUP_SOURCES",
]
