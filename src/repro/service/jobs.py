"""Job model: request validation, content-addressed job keys, lifecycle.

A job is one suite request — a set of ``SUITE`` registry entries plus an
:class:`~repro.core.experiment.ExperimentConfig`.  Its identity,
:func:`job_key`, is derived from the *existing* per-entry cache keys
(:func:`repro.cache.cache_key`), so two requests collide exactly when
the result cache would serve them the same documents: same entries, same
config fields, same package version, same source tree.  The queue's
single-flight map is keyed on it, which is what makes "identical
in-flight requests from many clients cost one run" true by construction.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.cache import cache_key
from repro.core.experiment import ExperimentConfig
from repro.core.suite import SUITE
from repro.errors import ServiceError
from repro.service.schema import JOB_STATES
from repro.sim.backends import resolve_backend

#: Config fields a request may set (every ExperimentConfig field).
_CONFIG_FIELDS = {f.name for f in dataclasses.fields(ExperimentConfig)}


@dataclass(frozen=True)
class JobSpec:
    """Validated, backend-pinned description of one suite request.

    ``trace`` requests end-to-end tracing for the job: the queue mints a
    per-job tracer and the merged timeline becomes available at
    ``GET /v1/jobs/<id>/trace``.  It never enters :func:`job_key` (a
    traced and an untraced request produce byte-identical results, so
    they dedup together); on a single-flight join the *leader's* flag
    wins — joiners of an untraced leader get no trace.
    """

    tenant: str
    entries: tuple[str, ...]
    config: ExperimentConfig
    trace: bool = False

    @classmethod
    def from_request(cls, doc: Any) -> "JobSpec":
        """Build a spec from a client's JSON request body.

        Raises :class:`~repro.errors.ServiceError` (or another
        :class:`~repro.errors.ReproError` from config resolution) on any
        invalid field; the server maps those to HTTP 400.
        """
        if not isinstance(doc, dict):
            raise ServiceError(
                f"job request must be a JSON object, got {type(doc).__name__}"
            )
        unknown = set(doc) - {"tenant", "entries", "config", "trace"}
        if unknown:
            raise ServiceError(f"unknown job request keys: {sorted(unknown)}")
        tenant = doc.get("tenant", "anonymous")
        if not isinstance(tenant, str) or not tenant:
            raise ServiceError("tenant must be a non-empty string")
        trace = doc.get("trace", False)
        if not isinstance(trace, bool):
            raise ServiceError(f"trace must be a boolean, got {trace!r}")
        entries = doc.get("entries")
        if entries is None:
            entries = list(SUITE)
        if not isinstance(entries, list) or not all(
            isinstance(e, str) for e in entries
        ):
            raise ServiceError("entries must be a list of experiment names")
        bad = sorted(set(entries) - set(SUITE))
        if bad:
            raise ServiceError(
                f"unknown suite entries: {bad}; known: {sorted(SUITE)}"
            )
        if len(set(entries)) != len(entries):
            dupes = sorted({e for e in entries if entries.count(e) > 1})
            raise ServiceError(f"duplicate suite entries: {dupes}")
        if not entries:
            raise ServiceError("entries must name at least one experiment")
        cfg_doc = doc.get("config", {})
        if not isinstance(cfg_doc, dict):
            raise ServiceError("config must be an object")
        unknown = set(cfg_doc) - set(_CONFIG_FIELDS)
        if unknown:
            raise ServiceError(
                f"unknown config fields: {sorted(unknown)}; "
                f"known: {sorted(_CONFIG_FIELDS)}"
            )
        try:
            config = ExperimentConfig(**cfg_doc)
        except TypeError as err:
            raise ServiceError(f"invalid config: {err}") from err
        _check_config_types(config)
        # Pin the backend exactly like run_suite does before computing
        # cache keys, so the job key matches what execution will use (an
        # unknown backend name surfaces here, as ConfigurationError).
        config = dataclasses.replace(
            config, backend=resolve_backend(config.backend).name
        )
        return cls(
            tenant=tenant, entries=tuple(entries), config=config, trace=trace
        )


def _check_config_types(config: ExperimentConfig) -> None:
    """Reject configs that would fingerprint but not execute sanely."""
    if not isinstance(config.seed, int) or isinstance(config.seed, bool):
        raise ServiceError(f"config.seed must be an integer, got {config.seed!r}")
    for name in ("scale", "interval_s"):
        value = getattr(config, name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ServiceError(f"config.{name} must be a number, got {value!r}")
        if value <= 0:
            raise ServiceError(f"config.{name} must be positive, got {value!r}")
    if not isinstance(config.sku, str) or not config.sku:
        raise ServiceError("config.sku must be a non-empty string")
    if not isinstance(config.n_packages, int) or config.n_packages < 1:
        raise ServiceError(
            f"config.n_packages must be a positive integer, got "
            f"{config.n_packages!r}"
        )


def entry_keys(spec: JobSpec) -> dict[str, str]:
    """The per-entry result-cache keys this job will read and write."""
    return {name: cache_key(name, spec.config) for name in spec.entries}


def job_key(spec: JobSpec) -> str:
    """Content address of one job: a hash over its entry cache keys.

    Tenant is deliberately excluded — dedup works *across* tenants; the
    cache keys already cover config, code, and version.
    """
    blob = json.dumps(
        {"entries": entry_keys(spec)}, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class Job:
    """One admitted job and its lifecycle state.

    Mutated only from the event loop thread (the executor thread hands
    results back through :meth:`repro.service.queue.JobQueue`'s worker
    coroutine), so no locking is needed.
    """

    id: str
    spec: JobSpec
    key: str
    state: str = "queued"
    dedup: str = "none"
    clients: int = 1
    error: str | None = None
    result: dict[str, Any] | None = None
    #: Event-loop timestamp of admission, for the latency histogram.
    t_submit: float = 0.0
    #: Request-scoped correlation id (traced jobs only).
    trace_id: str | None = None
    #: Per-job :class:`repro.obs.Obs` minted at admission for traced
    #: jobs — shares the service registry and epoch, never serialized.
    obs: Any = None
    #: Tracer timestamp of admission (service epoch), closing the
    #: ``http.accept`` span and opening ``queue.wait``.
    t_accept_ns: int = 0
    #: The merged ``repro.obs/trace`` document, set by the runner thread
    #: before the job turns terminal (``GET /v1/jobs/<id>/trace``).
    trace: dict[str, Any] | None = None
    #: ``repro.obs/flightrec`` bundle captured when the job failed
    #: (``GET /v1/jobs/<id>/diagnostics``).
    diagnostics: dict[str, Any] | None = None
    #: Set once the job reaches a terminal state (long-poll wakeup).
    finished: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")

    def finish(
        self,
        state: str,
        *,
        result: dict[str, Any] | None = None,
        error: str | None = None,
    ) -> None:
        if state not in JOB_STATES:
            raise ServiceError(f"unknown job state {state!r}")
        self.state = state
        self.result = result
        self.error = error
        self.finished.set()
